//! `glsc-serve` — run a supervised, crash-durable simulation sweep, or
//! serve it as a protocol-facing job service.
//!
//! ```text
//! glsc-serve sweep --state-dir DIR [options]    one-shot CLI sweep
//! glsc-serve serve --state-dir DIR (--stdio | --socket PATH) [options]
//! glsc-serve client --socket PATH [options]     submit + stream results
//!
//!   --state-dir DIR        durable state root (or GLSC_SERVE_DIR)
//!   --kernels A,B,..       kernels to run (default: all seven)
//!   --pattern SPEC         add a pattern job (glsc-patterns grammar,
//!                          e.g. conflict:p=0.25x256); repeatable, and
//!                          --kernels none drops the kernel cross product
//!   --shapes MxN,..        machine shapes (default: 1x1,1x4,4x1,4x4)
//!   --variant glsc|base    kernel variant (default: glsc)
//!   --width N              SIMD width (default: 4)
//!   --dataset tiny|a|b     dataset (default: tiny)
//!   --memory-order M       consistency model: sc|tso|relaxed
//!                          (default: sc; non-SC ids get a -tso/-relaxed
//!                          suffix so they never alias SC results)
//!   --checkpoint-every N   checkpoint cadence in cycles (default: 20000)
//!   --deadline-wall-ms N   per-attempt wall-clock budget
//!   --deadline-cycles N    absolute simulated-cycle budget per job
//!   --max-failures K       failures before quarantine (default: 3)
//!   --chaos-seed S         run every job under a seeded fault plan
//!   --seed S               retry-backoff jitter seed (default: 0)
//!   --inject-wedged        prepend a never-halting drill job (sweep)
//!   --queue-cap N          admission queue capacity (serve, default: 64)
//!   --fleet-width N        fleet batch width (default: 4)
//!   --priority P           submission priority 0-255 (client, default: 0)
//!   --shutdown             ask the service to exit after the sweep (client)
//! ```
//!
//! `serve` speaks the framed protocol (`glsc_serve::proto`) over stdin
//! or a Unix socket: length-prefixed, FNV-64-checksummed frames carrying
//! job submissions, with typed shed/reject replies and streamed results.
//! Exit code 0 on a clean sweep, SIGTERM drain, or client-requested
//! shutdown; 1 when any sweep job failed or was quarantined. Killing the
//! process at any moment is safe: rerunning resumes from the journal and
//! checkpoints, queued-but-unstarted submissions are re-queued, and the
//! output is byte-identical to what an uninterrupted run would have
//! printed.

use glsc_bench::jobspec::WireJobSpec;
use glsc_kernels::{Dataset, Variant, KERNEL_NAMES};
use glsc_serve::proto::{read_message, write_message, Reply, Request};
use glsc_serve::session::{run_session, SessionEnd};
use glsc_serve::{print_sweep, run_sweep, signal, JobSpec, ServiceConfig};
use std::io::Write;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::exit;

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!("usage: glsc-serve sweep|serve|client --state-dir DIR [options] (see --help)");
    exit(2);
}

enum Cmd {
    Sweep,
    Serve,
    Client,
}

struct Args {
    cmd: Cmd,
    state_dir: Option<PathBuf>,
    kernels: Vec<String>,
    patterns: Vec<String>,
    shapes: Vec<(usize, usize)>,
    variant: Variant,
    width: usize,
    dataset: Dataset,
    memory_order: glsc_sim::MemoryOrder,
    checkpoint_every: u64,
    deadline_wall_ms: Option<u64>,
    deadline_cycles: Option<u64>,
    max_failures: u32,
    chaos_seed: Option<u64>,
    seed: u64,
    inject_wedged: bool,
    stdio: bool,
    socket: Option<PathBuf>,
    queue_cap: usize,
    fleet_width: usize,
    priority: u8,
    shutdown: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        cmd: Cmd::Sweep,
        state_dir: std::env::var("GLSC_SERVE_DIR").ok().map(PathBuf::from),
        kernels: KERNEL_NAMES.iter().map(|k| k.to_string()).collect(),
        patterns: Vec::new(),
        shapes: vec![(1, 1), (1, 4), (4, 1), (4, 4)],
        variant: Variant::Glsc,
        width: 4,
        dataset: Dataset::Tiny,
        memory_order: glsc_sim::MemoryOrder::Sc,
        checkpoint_every: 20_000,
        deadline_wall_ms: None,
        deadline_cycles: None,
        max_failures: 3,
        chaos_seed: None,
        seed: 0,
        inject_wedged: false,
        stdio: false,
        socket: None,
        queue_cap: 64,
        fleet_width: 4,
        priority: 0,
        shutdown: false,
    };
    let mut it = std::env::args().skip(1);
    match it.next().as_deref() {
        Some("sweep") => args.cmd = Cmd::Sweep,
        Some("serve") => args.cmd = Cmd::Serve,
        Some("client") => args.cmd = Cmd::Client,
        Some("--help") | Some("-h") => {
            eprintln!("see the crate docs (src/main.rs header) for usage");
            exit(0);
        }
        other => usage(&format!(
            "expected the `sweep`, `serve`, or `client` subcommand, got {other:?}"
        )),
    }
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--state-dir" => args.state_dir = Some(PathBuf::from(value("--state-dir"))),
            "--kernels" => {
                let v = value("--kernels");
                args.kernels = if v == "none" {
                    Vec::new()
                } else {
                    v.split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect()
                };
            }
            // Pattern specs contain commas (trace lists), so they get
            // their own repeatable flag instead of riding --kernels.
            "--pattern" => args.patterns.push(value("--pattern")),
            "--shapes" => {
                args.shapes = value("--shapes")
                    .split(',')
                    .map(|s| {
                        let (m, n) = s
                            .trim()
                            .split_once('x')
                            .unwrap_or_else(|| usage(&format!("bad shape {s:?} (want MxN)")));
                        (
                            m.parse().unwrap_or_else(|_| usage("bad shape cores")),
                            n.parse().unwrap_or_else(|_| usage("bad shape threads")),
                        )
                    })
                    .collect();
            }
            "--variant" => {
                args.variant = match value("--variant").as_str() {
                    "glsc" => Variant::Glsc,
                    "base" => Variant::Base,
                    v => usage(&format!("unknown variant {v:?}")),
                }
            }
            "--width" => {
                args.width = value("--width")
                    .parse()
                    .unwrap_or_else(|_| usage("bad width"))
            }
            "--dataset" => {
                args.dataset = match value("--dataset").to_ascii_lowercase().as_str() {
                    "tiny" | "t" => Dataset::Tiny,
                    "a" => Dataset::A,
                    "b" => Dataset::B,
                    v => usage(&format!("unknown dataset {v:?}")),
                }
            }
            "--memory-order" => {
                args.memory_order = value("--memory-order")
                    .parse()
                    .unwrap_or_else(|e| usage(&format!("{e}")))
            }
            "--checkpoint-every" => {
                args.checkpoint_every = value("--checkpoint-every")
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage("bad --checkpoint-every"))
            }
            "--deadline-wall-ms" => {
                args.deadline_wall_ms = Some(
                    value("--deadline-wall-ms")
                        .parse()
                        .unwrap_or_else(|_| usage("bad --deadline-wall-ms")),
                )
            }
            "--deadline-cycles" => {
                args.deadline_cycles = Some(
                    value("--deadline-cycles")
                        .parse()
                        .unwrap_or_else(|_| usage("bad --deadline-cycles")),
                )
            }
            "--max-failures" => {
                args.max_failures = value("--max-failures")
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage("bad --max-failures"))
            }
            "--chaos-seed" => {
                args.chaos_seed = Some(
                    value("--chaos-seed")
                        .parse()
                        .unwrap_or_else(|_| usage("bad --chaos-seed")),
                )
            }
            "--seed" => {
                args.seed = value("--seed")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --seed"))
            }
            "--inject-wedged" => args.inject_wedged = true,
            "--stdio" => args.stdio = true,
            "--socket" => args.socket = Some(PathBuf::from(value("--socket"))),
            "--queue-cap" => {
                args.queue_cap = value("--queue-cap")
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage("bad --queue-cap"))
            }
            "--fleet-width" => {
                args.fleet_width = value("--fleet-width")
                    .parse()
                    .ok()
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage("bad --fleet-width"))
            }
            "--priority" => {
                args.priority = value("--priority")
                    .parse()
                    .unwrap_or_else(|_| usage("bad --priority (0-255)"))
            }
            "--shutdown" => args.shutdown = true,
            f => usage(&format!("unknown flag {f:?}")),
        }
    }
    args
}

fn service_config(args: &Args) -> ServiceConfig {
    let Some(state_dir) = args.state_dir.clone() else {
        usage("--state-dir (or GLSC_SERVE_DIR) is required");
    };
    let mut cfg = ServiceConfig::new(state_dir);
    cfg.checkpoint_every = args.checkpoint_every;
    cfg.deadline_wall_ms = args.deadline_wall_ms;
    cfg.deadline_cycles = args.deadline_cycles;
    cfg.max_failures = args.max_failures;
    cfg.seed = args.seed;
    cfg.fleet_width = args.fleet_width;
    cfg.queue_capacity = args.queue_cap;
    cfg
}

fn main() {
    signal::install_term_handler();
    let args = parse_args();
    match args.cmd {
        Cmd::Sweep => cmd_sweep(&args),
        Cmd::Serve => cmd_serve(&args),
        Cmd::Client => cmd_client(&args),
    }
}

/// The submission cross product both the sweep CLI and the client
/// build: kernels × shapes, then `--pattern` specs × shapes, all with
/// the shared chaos/deadline knobs applied.
fn sweep_specs(args: &Args) -> Vec<WireJobSpec> {
    let mut specs = Vec::new();
    for kernel in &args.kernels {
        for &shape in &args.shapes {
            specs.push(WireJobSpec::kernel(
                kernel,
                args.dataset,
                args.variant,
                shape,
                args.width,
            ));
        }
    }
    for pattern in &args.patterns {
        for &shape in &args.shapes {
            specs.push(WireJobSpec::pattern(
                pattern,
                args.dataset,
                args.variant,
                shape,
                args.width,
            ));
        }
    }
    for spec in &mut specs {
        spec.memory_order = args.memory_order;
        spec.chaos = args.chaos_seed;
        spec.deadline_cycles = args.deadline_cycles;
        spec.deadline_wall_ms = args.deadline_wall_ms;
    }
    specs
}

fn cmd_sweep(args: &Args) -> ! {
    let cfg = service_config(args);
    let mut jobs = Vec::new();
    if args.inject_wedged {
        jobs.push(JobSpec::wedged());
    }
    for spec in sweep_specs(args) {
        if let Err(e) = spec.validate() {
            usage(&format!("{}: {e}", spec.kernel_name()));
        }
        let mut job = JobSpec::kernel(
            &spec.kernel_name(),
            spec.resolve_dataset(),
            spec.resolve_variant(),
            (spec.cores as usize, spec.tpc as usize),
            spec.width as usize,
            spec.chaos,
        )
        .unwrap_or_else(|e| usage(&e.to_string()));
        // Key jobs by the wire id so pattern jobs get the same
        // filesystem-safe hashed names the protocol path uses (and
        // relaxed-model jobs their -tso/-relaxed suffix).
        job.id = spec.id();
        job.cfg = job.cfg.with_memory_order(spec.memory_order);
        job.deadline_cycles = spec.deadline_cycles;
        job.deadline_wall_ms = spec.deadline_wall_ms;
        jobs.push(job);
    }

    match run_sweep(&cfg, &jobs) {
        Ok(report) => {
            let mut stdout = std::io::stdout().lock();
            print_sweep(&jobs, &report, &mut stdout);
            if report.drained {
                eprintln!("[serve] drained cleanly; rerun to finish the sweep");
            }
            exit(report.exit_code());
        }
        Err(e) => {
            eprintln!("[serve] state-dir IO error: {e}");
            exit(3);
        }
    }
}

fn cmd_serve(args: &Args) -> ! {
    let cfg = service_config(args);
    match (&args.socket, args.stdio) {
        (Some(_), true) => usage("--stdio and --socket are mutually exclusive"),
        (None, false) => usage("serve needs --stdio or --socket PATH"),
        (None, true) => {
            let mut stdin = std::io::stdin().lock();
            let mut stdout = std::io::stdout().lock();
            match run_session(&cfg, &mut stdin, &mut stdout) {
                Ok(end) => {
                    if end == SessionEnd::Drained {
                        eprintln!("[serve] drained cleanly; restart to finish pending jobs");
                    }
                    exit(0);
                }
                Err(e) => {
                    eprintln!("[serve] state-dir IO error: {e}");
                    exit(3);
                }
            }
        }
        (Some(path), false) => serve_socket(&cfg, path),
    }
}

/// Accept loop: one client session at a time (jobs are globally
/// journaled, so sessions serialize naturally). Nonblocking accept so a
/// SIGTERM between sessions drains promptly.
fn serve_socket(cfg: &ServiceConfig, path: &PathBuf) -> ! {
    let _ = std::fs::remove_file(path);
    let listener = match UnixListener::bind(path) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("[serve] cannot bind {}: {e}", path.display());
            exit(3);
        }
    };
    if let Err(e) = listener.set_nonblocking(true) {
        eprintln!("[serve] cannot poll the listener: {e}");
        exit(3);
    }
    eprintln!("[serve] listening on {}", path.display());
    loop {
        if signal::term_requested() {
            eprintln!("[serve] drained cleanly; restart to finish pending jobs");
            let _ = std::fs::remove_file(path);
            exit(0);
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let mut input = match stream.try_clone() {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("[serve] cannot clone the client stream: {e}");
                        continue;
                    }
                };
                let mut output = stream;
                match run_session(cfg, &mut input, &mut output) {
                    Ok(SessionEnd::Closed) => continue,
                    Ok(SessionEnd::Shutdown) => {
                        eprintln!("[serve] shutdown requested by client");
                        let _ = std::fs::remove_file(path);
                        exit(0);
                    }
                    Ok(SessionEnd::Drained) => {
                        eprintln!("[serve] drained cleanly; restart to finish pending jobs");
                        let _ = std::fs::remove_file(path);
                        exit(0);
                    }
                    Err(e) => {
                        eprintln!("[serve] state-dir IO error: {e}");
                        exit(3);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                eprintln!("[serve] accept failed: {e}");
                exit(3);
            }
        }
    }
}

/// One client row in the deterministic result table.
enum Row {
    Done { cycles: u64, chaos: Option<String> },
    Failed { label: String, detail: String },
    Shed { queued: u32, capacity: u32 },
    Rejected { reason: String },
}

fn cmd_client(args: &Args) -> ! {
    let Some(path) = &args.socket else {
        usage("client needs --socket PATH");
    };
    let stream = match UnixStream::connect(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[client] cannot connect to {}: {e}", path.display());
            exit(3);
        }
    };
    let mut input = match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[client] cannot clone the stream: {e}");
            exit(3);
        }
    };
    let mut output = stream;

    // Submit the cross product, then the run barrier. Specs are sent
    // before replies are drained; at CLI scale the socket buffers absorb
    // this comfortably.
    let mut ids: Vec<String> = Vec::new();
    for spec in sweep_specs(args) {
        ids.push(spec.id());
        send_or_die(
            &mut output,
            &Request::Submit {
                priority: args.priority,
                spec,
            },
        );
    }
    send_or_die(&mut output, &Request::Run);

    // Read everything up to the sweep barrier, keyed by job id; later
    // replies (results) override earlier ones (admission).
    let mut rows: std::collections::HashMap<String, Row> = std::collections::HashMap::new();
    loop {
        let reply = match read_message::<Reply>(&mut input) {
            Ok(Some(reply)) => reply,
            Ok(None) => {
                eprintln!("[client] server closed the stream before the sweep finished");
                break;
            }
            Err(e) => {
                eprintln!("[client] bad frame from server: {e}");
                exit(3);
            }
        };
        match reply {
            Reply::Accepted { .. } => {}
            Reply::Shed {
                id,
                queued,
                capacity,
            } => {
                rows.insert(id, Row::Shed { queued, capacity });
            }
            Reply::Rejected { id, reason } => {
                rows.insert(id, Row::Rejected { reason });
            }
            Reply::FrameError { detail } => {
                eprintln!("[client] server reported a frame error: {detail}");
            }
            Reply::JobDone {
                id, cycles, chaos, ..
            } => {
                rows.insert(id, Row::Done { cycles, chaos });
            }
            Reply::JobFailed { id, label, detail } => {
                rows.insert(id, Row::Failed { label, detail });
            }
            Reply::SweepDone { .. } => break,
        }
    }

    if args.shutdown {
        send_or_die(&mut output, &Request::Shutdown);
    }

    // Deterministic table in submission order — diffable across
    // crash/recovery histories exactly like the sweep CLI's.
    let width = ids.iter().map(String::len).max().unwrap_or(0).max(3);
    let mut stdout = std::io::stdout().lock();
    let mut ok = 0usize;
    let mut failed = 0usize;
    let _ = writeln!(stdout, "=== glsc-client sweep: {} job(s) ===", ids.len());
    for id in &ids {
        match rows.get(id) {
            Some(Row::Done { cycles, chaos }) => {
                ok += 1;
                let _ = writeln!(stdout, "{id:<width$}  {cycles:>12} cycles");
                if let Some(chaos) = chaos {
                    let _ = writeln!(stdout, "{:<width$}  chaos: {chaos}", "");
                }
            }
            Some(Row::Failed { label, detail }) => {
                failed += 1;
                let _ = writeln!(stdout, "{id:<width$}  {label} {detail}");
            }
            Some(Row::Shed { queued, capacity }) => {
                failed += 1;
                let _ = writeln!(
                    stdout,
                    "{id:<width$}  SHED shed by admission control (queue {queued}/{capacity})"
                );
            }
            Some(Row::Rejected { reason }) => {
                failed += 1;
                let _ = writeln!(stdout, "{id:<width$}  REJ {reason}");
            }
            None => {
                failed += 1;
                let _ = writeln!(stdout, "{id:<width$}  ERR not reached");
            }
        }
    }
    let _ = writeln!(stdout, "== {ok} ok, {failed} failed ==");
    exit(i32::from(failed > 0));
}

fn send_or_die(output: &mut UnixStream, req: &Request) {
    if let Err(e) = write_message(output, req) {
        eprintln!("[client] cannot send to server: {e}");
        exit(3);
    }
}
