//! Integration tests for the MemorySystem: timing, MSI transitions,
//! reservations, inclusion, and bank contention.

use glsc_mem::{L1State, MemConfig, MemOp, MemorySystem};

fn sys(cores: usize) -> MemorySystem {
    let cfg = MemConfig {
        prefetch: false,
        ..MemConfig::default()
    };
    MemorySystem::new(cfg, cores, 4)
}

#[test]
fn cold_miss_pays_l2_and_dram() {
    let mut m = sys(1);
    let r = m.access(0, 0, MemOp::Load, 0x1000, 0);
    // l1 probe (3) + l2 (12) + dram (280)
    assert_eq!(r.done, 3 + 12 + 280);
    assert!(!r.l1_hit);
    assert_eq!(m.stats().l1_misses, 1);
    assert_eq!(m.stats().l2_misses, 1);
    m.check_invariants();
}

#[test]
fn subsequent_hit_is_three_cycles() {
    let mut m = sys(1);
    let fill = m.access(0, 0, MemOp::Load, 0x1000, 0).done;
    let r = m.access(0, 0, MemOp::Load, 0x1004, fill);
    assert!(r.l1_hit);
    assert_eq!(r.done, fill + 3);
    assert_eq!(m.stats().l1_hits, 1);
}

#[test]
fn second_miss_to_same_line_completes_at_fill() {
    let mut m = sys(1);
    let r1 = m.access(0, 0, MemOp::Load, 0x1000, 0);
    let r2 = m.access(0, 1, MemOp::Load, 0x1008, 1);
    assert!(r2.l1_hit, "line already installed (in flight)");
    assert_eq!(r2.done, r1.done, "hit-under-miss completes at fill time");
    assert_eq!(m.stats().hits_under_miss, 1);
}

#[test]
fn l2_hit_after_remote_read_is_cheap() {
    let mut m = sys(2);
    let t0 = m.access(0, 0, MemOp::Load, 0x1000, 0).done;
    let r = m.access(1, 0, MemOp::Load, 0x1000, t0);
    assert!(!r.l1_hit);
    // l1 probe + l2 latency, no DRAM
    assert_eq!(r.done, t0 + 3 + 12);
    assert_eq!(m.stats().l2_hits, 1);
    m.check_invariants();
}

#[test]
fn store_invalidates_remote_sharers_and_their_reservations() {
    let mut m = sys(2);
    let t0 = m.access(0, 0, MemOp::LoadLinked, 0x1000, 0).done;
    assert!(m.holds_reservation(0, 0, 0x1000));
    let t1 = m.access(1, 0, MemOp::Load, 0x1000, t0).done;
    // Core 1 stores: upgrade invalidates core 0's copy and reservation.
    m.access(1, 0, MemOp::Store, 0x1000, t1);
    assert!(!m.holds_reservation(0, 0, 0x1000));
    assert!(m.l1(0).peek(0x1000).is_none(), "core 0 copy invalidated");
    assert_eq!(m.stats().invalidations, 1);
    m.check_invariants();
}

#[test]
fn ll_sc_success_and_failure() {
    let mut m = sys(2);
    let t0 = m.access(0, 0, MemOp::LoadLinked, 0x40, 0).done;
    let ok = m.access(0, 0, MemOp::StoreCond, 0x40, t0);
    assert!(ok.sc_ok);
    assert_eq!(m.stats().sc_successes, 1);
    // Reservation consumed: immediate retry fails.
    let fail = m.access(0, 0, MemOp::StoreCond, 0x40, ok.done);
    assert!(!fail.sc_ok);
    assert_eq!(m.stats().sc_failures, 1);
}

#[test]
fn sc_fails_after_remote_store() {
    let mut m = sys(2);
    let t0 = m.access(0, 0, MemOp::LoadLinked, 0x40, 0).done;
    let t1 = m.access(1, 0, MemOp::Store, 0x40, t0).done;
    let r = m.access(0, 0, MemOp::StoreCond, 0x40, t1);
    assert!(
        !r.sc_ok,
        "intervening remote store must kill the reservation"
    );
    m.check_invariants();
}

#[test]
fn sc_fails_after_same_core_other_thread_store() {
    let mut m = sys(1);
    let t0 = m.access(0, 0, MemOp::LoadLinked, 0x40, 0).done;
    // SMT thread 1 on the same core writes the line: the single GLSC entry
    // per line is cleared even though the line stays resident.
    let t1 = m.access(0, 1, MemOp::Store, 0x40, t0).done;
    let r = m.access(0, 0, MemOp::StoreCond, 0x40, t1);
    assert!(!r.sc_ok);
    assert_eq!(m.stats().reservations_cleared_by_stores, 1);
}

#[test]
fn concurrent_linkers_first_sc_wins() {
    // Per-thread reservation bits (the paper's "(1 + #SMT threads) bits
    // per line"): both threads hold links; the first sc to commit wins and
    // its write clears the other thread's link.
    let mut m = sys(1);
    let t0 = m.access(0, 0, MemOp::LoadLinked, 0x40, 0).done;
    let t1 = m.access(0, 1, MemOp::LoadLinked, 0x40, t0).done;
    assert!(m.holds_reservation(0, 0, 0x40));
    assert!(m.holds_reservation(0, 1, 0x40));
    let r0 = m.access(0, 0, MemOp::StoreCond, 0x40, t1);
    assert!(r0.sc_ok, "first committer succeeds");
    let r1 = m.access(0, 1, MemOp::StoreCond, 0x40, r0.done);
    assert!(!r1.sc_ok, "the winning sc cleared the other link");
}

#[test]
fn sc_on_shared_line_upgrades_and_succeeds() {
    let mut m = sys(2);
    let t0 = m.access(0, 0, MemOp::LoadLinked, 0x40, 0).done;
    // A remote *read* must not kill the reservation.
    let t1 = m.access(1, 0, MemOp::Load, 0x40, t0).done;
    assert!(m.holds_reservation(0, 0, 0x40));
    let r = m.access(0, 0, MemOp::StoreCond, 0x40, t1);
    assert!(r.sc_ok, "reads do not clear reservations");
    assert!(
        m.l1(1).peek(0x40).is_none(),
        "upgrade invalidated the reader"
    );
    assert_eq!(m.l1(0).peek(0x40).unwrap().state, L1State::Modified);
    m.check_invariants();
}

#[test]
fn dirty_forward_costs_extra_and_downgrades() {
    let mut m = sys(2);
    let t0 = m.access(0, 0, MemOp::Store, 0x1000, 0).done;
    let r = m.access(1, 0, MemOp::Load, 0x1000, t0);
    assert_eq!(
        r.done,
        t0 + 3 + 12 + 12,
        "cache-to-cache adds forward extra"
    );
    assert_eq!(m.l1(0).peek(0x1000).unwrap().state, L1State::Shared);
    assert_eq!(m.stats().dirty_forwards, 1);
    m.check_invariants();
}

#[test]
fn store_miss_with_remote_modified_invalidates_owner() {
    let mut m = sys(2);
    let t0 = m.access(0, 0, MemOp::Store, 0x1000, 0).done;
    let _ = m.access(1, 0, MemOp::Store, 0x1000, t0);
    assert!(m.l1(0).peek(0x1000).is_none());
    assert_eq!(m.l1(1).peek(0x1000).unwrap().state, L1State::Modified);
    m.check_invariants();
}

#[test]
fn eviction_drops_reservation_via_capacity() {
    let mut cfg = MemConfig::tiny(); // L1: 8 sets x 2 ways
    cfg.prefetch = false;
    let mut m = MemorySystem::new(cfg, 1, 4);
    let set_stride = 8 * 64; // same-set stride
    let t0 = m.access(0, 0, MemOp::LoadLinked, 0, 0).done;
    assert!(m.holds_reservation(0, 0, 0));
    let t1 = m.access(0, 0, MemOp::Load, set_stride, t0).done;
    let t2 = m.access(0, 0, MemOp::Load, 2 * set_stride, t1).done; // evicts line 0
    assert!(!m.holds_reservation(0, 0, 0));
    let r = m.access(0, 0, MemOp::StoreCond, 0, t2);
    assert!(
        !r.sc_ok,
        "eviction must conservatively kill the reservation"
    );
    m.check_invariants();
}

#[test]
fn bank_contention_serializes() {
    let mut m = sys(2);
    // Two cores miss distinct lines in the same bank at the same cycle.
    let a = m.access(0, 0, MemOp::Load, 0x0, 0).done;
    let bank_stride = 64 * 16; // same bank, different set/line
    let b = m.access(1, 0, MemOp::Load, bank_stride as u64, 0).done;
    assert_eq!(b, a + 2, "second request waits one bank occupancy");
}

#[test]
fn different_banks_do_not_contend() {
    let mut m = sys(2);
    let a = m.access(0, 0, MemOp::Load, 0x0, 0).done;
    let b = m.access(1, 0, MemOp::Load, 64, 0).done; // adjacent line, next bank
    assert_eq!(b, a);
}

#[test]
fn prefetcher_fills_ahead() {
    let cfg = MemConfig {
        prefetch: true,
        prefetch_degree: 2,
        ..MemConfig::default()
    };
    let mut m = MemorySystem::new(cfg, 1, 4);
    let mut now = 0;
    for i in 0..4u64 {
        now = m.access(0, 0, MemOp::Load, i * 64, now).done;
    }
    assert!(m.stats().prefetches_issued > 0);
    // The next line in the stream should already be resident.
    assert!(m.l1(0).peek(4 * 64).is_some(), "line 4 prefetched");
    m.check_invariants();
}

#[test]
fn inclusion_back_invalidation() {
    // Tiny L2 (2 banks x 32 sets x 2 ways... compute: 8KB/64B/2/2 = 32 sets)
    let mut cfg = MemConfig::tiny();
    cfg.prefetch = false;
    let mut m = MemorySystem::new(cfg.clone(), 1, 1);
    // Walk enough lines in one L2 set to force L2 evictions. Lines mapping
    // to L2 bank 0, set 0: stride = line_bytes * banks * sets_per_bank.
    let stride = cfg.line_bytes * cfg.l2_banks as u64 * cfg.l2_sets_per_bank() as u64;
    let mut now = 0;
    for i in 0..3 {
        now = m.access(0, 0, MemOp::Load, i * stride, now).done;
    }
    assert!(m.stats().back_invalidations > 0 || m.l1(0).len() <= 2);
    m.check_invariants();
}

#[test]
fn stats_reset() {
    let mut m = sys(1);
    m.access(0, 0, MemOp::Load, 0, 0);
    assert!(m.stats().l1_accesses() > 0);
    m.reset_stats();
    assert_eq!(m.stats().l1_accesses(), 0);
}

#[test]
fn monotone_completion_under_interleaving() {
    // A mixed scalar workload must always produce done >= now + hit.
    let mut m = sys(4);
    for i in 0..200u64 {
        let now = i;
        let core = (i % 4) as usize;
        let tid = ((i / 4) % 4) as u8;
        let addr = (i * 977) % 4096 * 4;
        let op = match i % 4 {
            0 => MemOp::Load,
            1 => MemOp::Store,
            2 => MemOp::LoadLinked,
            _ => MemOp::StoreCond,
        };
        let r = m.access(core, tid, op, addr, now);
        assert!(r.done >= now + 3, "completion before minimum latency");
    }
    m.check_invariants();
}
