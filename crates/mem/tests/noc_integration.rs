//! Integration tests for the on-die interconnect: message accounting on
//! the coherence paths, topology timing differences, the node-count
//! cross-check, and the new coherence-traffic counters.

use glsc_mem::{ConfigError, MemConfig, MemOp, MemorySystem, MsgClass, NocConfig, Topology};

fn cfg_with(noc: NocConfig) -> MemConfig {
    MemConfig {
        prefetch: false,
        noc,
        ..MemConfig::default()
    }
}

#[test]
fn declared_node_count_is_cross_checked() {
    // 2 cores + 16 banks = 18 stops; declaring 18 passes, 17 fails.
    let ok = MemorySystem::try_new(cfg_with(NocConfig::ring().with_nodes(18)), 2, 4);
    assert!(ok.is_ok());
    let err = MemorySystem::try_new(cfg_with(NocConfig::ring().with_nodes(17)), 2, 4);
    assert_eq!(
        err.err(),
        Some(ConfigError::NocNodeCountMismatch {
            declared: 17,
            cores: 2,
            banks: 16,
        })
    );
    // The error message names both sides of the disagreement.
    let msg = ConfigError::NocNodeCountMismatch {
        declared: 17,
        cores: 2,
        banks: 16,
    }
    .to_string();
    assert!(msg.contains("17") && msg.contains("18"), "{msg}");
}

#[test]
fn ideal_fabric_counts_messages_without_charging_cycles() {
    let mut m = MemorySystem::new(cfg_with(NocConfig::ideal()), 2, 4);
    // Cold load miss: GetS request + DataReply, free of charge.
    let r = m.access(0, 0, MemOp::Load, 0x1000, 0);
    assert_eq!(r.done, 3 + 12 + 280);
    assert_eq!(m.stats().noc.class(MsgClass::GetS), 1);
    assert_eq!(m.stats().noc.class(MsgClass::DataReply), 1);
    assert_eq!(m.stats().noc.queue_cycles, 0);
    // Remote store to the same line: GetX, invalidation + ack, reply.
    let r2 = m.access(1, 0, MemOp::Store, 0x1000, r.done);
    assert!(r2.sc_ok);
    assert_eq!(m.stats().noc.class(MsgClass::GetX), 1);
    assert_eq!(m.stats().noc.class(MsgClass::Inv), 1);
    assert_eq!(m.stats().noc.class(MsgClass::InvAck), 1);
    assert_eq!(m.stats().inv_acks, 1);
    assert_eq!(m.stats().invalidations, 1);
}

#[test]
fn ll_and_sc_travel_as_glsc_probes() {
    let mut m = MemorySystem::new(cfg_with(NocConfig::ideal()), 2, 4);
    let r = m.access(0, 0, MemOp::LoadLinked, 0x40, 0);
    assert_eq!(m.stats().noc.class(MsgClass::GlscProbe), 1);
    // Successful sc on a Shared line upgrades via a GLSC probe too.
    let r2 = m.access(0, 0, MemOp::StoreCond, 0x40, r.done);
    assert!(r2.sc_ok);
    assert_eq!(m.stats().noc.class(MsgClass::GlscProbe), 2);
}

#[test]
fn dirty_eviction_sends_a_writeback() {
    let cfg = MemConfig {
        prefetch: false,
        ..MemConfig::tiny()
    };
    let sets = cfg.l1_sets() as u64;
    let assoc = cfg.l1_assoc;
    let line = cfg.line_bytes;
    let mut m = MemorySystem::new(cfg, 1, 4);
    // Dirty one line, then overflow its L1 set with clean fills.
    let mut t = m.access(0, 0, MemOp::Store, 0, 0).done;
    for k in 1..=assoc as u64 {
        t = m.access(0, 0, MemOp::Load, k * sets * line, t).done;
    }
    assert_eq!(m.stats().writebacks, 1);
    assert_eq!(m.stats().noc.class(MsgClass::Writeback), 1);
    m.check_invariants();
}

#[test]
fn ring_charges_hop_latency_on_a_cold_miss() {
    // 1 core + 16 banks. Line 0 lives in bank 0 = stop 1: one hop each
    // way, so the cold miss pays exactly 2 extra cycles at link_latency 1.
    let mut ideal = MemorySystem::new(cfg_with(NocConfig::ideal()), 1, 4);
    let mut ring = MemorySystem::new(cfg_with(NocConfig::ring()), 1, 4);
    let di = ideal.access(0, 0, MemOp::Load, 0, 0).done;
    let dr = ring.access(0, 0, MemOp::Load, 0, 0).done;
    assert_eq!(dr, di + 2);
    assert_eq!(ring.stats().noc.hops, 2);
}

#[test]
fn crossbar_queues_concurrent_requests_to_one_bank() {
    let mut m = MemorySystem::new(cfg_with(NocConfig::crossbar()), 4, 4);
    // Four cores hit the same bank's input port at the same cycle; the
    // port serializes them one occupancy slot apart.
    for c in 0..4 {
        m.access(c, 0, MemOp::Load, 0x40 * 16 * c as u64, 0);
    }
    assert_eq!(m.cfg().bank_of(0), m.cfg().bank_of(0x40 * 16));
    assert!(
        m.stats().noc.queue_cycles > 0,
        "no port contention observed"
    );
    assert_eq!(m.noc().cfg().topology, Topology::Crossbar);
}

#[test]
fn per_link_counters_match_fabric_shape_and_survive_reset() {
    let mut m = MemorySystem::new(cfg_with(NocConfig::ring()), 2, 4);
    assert_eq!(m.noc().num_links(), 2 * (2 + 16));
    assert_eq!(m.stats().noc.link_msgs.len(), m.noc().num_links());
    m.access(0, 0, MemOp::Load, 0, 0);
    assert!(m.stats().noc.total_msgs() > 0);
    assert!(m.stats().noc.link_msgs.iter().sum::<u64>() > 0);
    m.reset_stats();
    assert_eq!(m.stats().noc.total_msgs(), 0);
    assert_eq!(m.stats().noc.link_msgs.len(), m.noc().num_links());
}
