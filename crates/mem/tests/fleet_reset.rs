//! Fleet-engine plumbing at the memory-system level (DESIGN.md §13):
//! `MemorySystem::reset` must return a dirtied system to a state
//! behaviorally indistinguishable from a fresh one, and the CoW backing
//! layer must compose with chaos jitter and snapshot/restore.

use glsc_mem::{Backing, ChaosConfig, FaultPlan, MemConfig, MemOp, MemorySystem};
use std::sync::Arc;

fn sys(cores: usize) -> MemorySystem {
    MemorySystem::new(MemConfig::default(), cores, 4)
}

/// Drives a fixed mixed-op sequence and returns every completion cycle
/// plus a stats digest.
fn drive(m: &mut MemorySystem) -> (Vec<u64>, String) {
    let mut dones = Vec::new();
    let mut now = 0;
    for i in 0..200u64 {
        let core = (i % m.num_cores() as u64) as usize;
        let tid = (i % 4) as u8;
        let addr = 0x1000 + (i * 52) % 0x4000;
        let addr = addr & !3;
        let op = match i % 5 {
            0 | 3 => MemOp::Load,
            1 => MemOp::Store,
            2 => MemOp::LoadLinked,
            _ => MemOp::StoreCond,
        };
        let r = m.access(core, tid, op, addr, now);
        dones.push(r.done);
        now += 7;
    }
    (dones, format!("{:?}", m.stats()))
}

#[test]
fn reset_system_is_indistinguishable_from_fresh() {
    let mut fresh = sys(2);
    let (want_dones, want_stats) = drive(&mut fresh);

    // Dirty a second system thoroughly — accesses, a fault plan, backing
    // writes — then reset and replay the same sequence.
    let mut reused = sys(2);
    reused.install_fault_plan(FaultPlan::from_seed(9));
    let _ = drive(&mut reused);
    reused.backing_mut().write_u32(0x8000, 77);
    reused.reset();

    assert!(reused.fault_plan().is_none(), "reset uninstalls the plan");
    assert_eq!(reused.backing().resident_pages(), 0);
    let (got_dones, got_stats) = drive(&mut reused);
    assert_eq!(got_dones, want_dones, "timing must replay bit-identically");
    assert_eq!(
        got_stats, want_stats,
        "counters must replay bit-identically"
    );
}

#[test]
fn reset_unmounts_cow_base() {
    let mut img = Backing::new();
    img.write_u32(0x1000, 5);
    let base = img.freeze();
    let mut m = sys(1);
    m.backing_mut().set_base(base);
    assert_eq!(m.backing().read_u32(0x1000), 5);
    m.reset();
    assert_eq!(m.backing().base_pages(), 0);
    assert_eq!(m.backing().read_u32(0x1000), 0);
}

/// DRAM jitter perturbs timing only; the functional CoW image — shared
/// base and private overlay — must be byte-identical with and without the
/// fault plan, and the base must stay pristine under both.
#[test]
fn cow_backing_is_untouched_by_dram_jitter() {
    let mut img = Backing::new();
    for i in 0..64u64 {
        img.write_u32(0x1000 + 4 * i, (i * 3 + 1) as u32);
    }
    let base = img.freeze();

    let run = |chaos: bool| -> (Vec<u32>, usize) {
        let mut m = sys(1);
        m.backing_mut().set_base(Arc::clone(&base));
        if chaos {
            m.install_fault_plan(FaultPlan::new(ChaosConfig {
                period: 1,
                dram_jitter_prob: 1.0,
                dram_jitter_max: 32,
                ..ChaosConfig::from_seed(3)
            }));
        }
        let mut now = 0;
        for i in 0..64u64 {
            let addr = 0x1000 + 4 * i;
            let r = m.access(0, 0, MemOp::Load, addr, now);
            now = r.done;
            let v = m.backing().read_u32(addr);
            m.backing_mut().write_u32(addr, v + 1);
        }
        if chaos {
            let st = m.chaos_stats().expect("plan installed");
            assert!(st.jitter_events > 0, "jitter must actually fire");
        }
        (
            m.backing().read_u32_vec(0x1000, 64),
            m.backing().resident_pages(),
        )
    };

    let (quiet, quiet_pages) = run(false);
    let (noisy, noisy_pages) = run(true);
    assert_eq!(quiet, noisy, "jitter must not change functional values");
    assert_eq!(quiet_pages, noisy_pages);
    // The shared base still holds the original values.
    let mut probe = Backing::new();
    probe.set_base(base);
    assert_eq!(probe.read_u32(0x1000), 1);
}

/// Snapshot/restore must capture the CoW overlay exactly: private pages
/// deep-copied, base remounted, later writes discarded on restore.
#[test]
fn snapshot_restore_with_cow_resident_pages() {
    let mut img = Backing::new();
    img.write_u32(0x2000, 10);
    img.write_u32(0x3000, 20);
    let base = img.freeze();

    let mut m = sys(1);
    m.backing_mut().set_base(Arc::clone(&base));
    // Materialize one page via CoW, leave the other untouched.
    m.backing_mut().write_u32(0x2000, 11);
    let _ = m.access(0, 0, MemOp::Load, 0x2000, 0);
    let snap = m.snapshot();

    // Diverge: touch both pages and more timing state.
    m.backing_mut().write_u32(0x2000, 99);
    m.backing_mut().write_u32(0x3000, 99);
    let _ = m.access(0, 0, MemOp::Store, 0x3000, 500);

    m.restore(&snap);
    assert_eq!(m.backing().read_u32(0x2000), 11, "private page restored");
    assert_eq!(m.backing().read_u32(0x3000), 20, "fallthrough restored");
    assert_eq!(m.backing().resident_pages(), 1);
    assert_eq!(m.backing().base_pages(), 2);
    // And the restored system evolves independently of the snapshot.
    m.backing_mut().write_u32(0x3000, 21);
    assert_eq!(m.backing().read_u32(0x3000), 21);
    let mut probe = Backing::new();
    probe.set_base(base);
    assert_eq!(probe.read_u32(0x3000), 20);
}
