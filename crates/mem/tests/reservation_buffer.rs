//! Tests for the §3.3 alternative GLSC implementation: reservations held
//! in a small fully-associative buffer instead of per-line tag bits.

use glsc_mem::{MemConfig, MemOp, MemorySystem};

fn sys(buffer: usize) -> MemorySystem {
    let cfg = MemConfig {
        prefetch: false,
        glsc_buffer_entries: Some(buffer),
        ..MemConfig::default()
    };
    MemorySystem::new(cfg, 2, 4)
}

#[test]
fn ll_sc_works_through_the_buffer() {
    let mut m = sys(4);
    let t0 = m.access(0, 0, MemOp::LoadLinked, 0x40, 0).done;
    assert!(m.holds_reservation(0, 0, 0x40));
    let r = m.access(0, 0, MemOp::StoreCond, 0x40, t0);
    assert!(r.sc_ok);
    assert!(!m.holds_reservation(0, 0, 0x40), "consumed");
    assert_eq!(m.reservation_buffer_evictions(), 0);
}

#[test]
fn buffer_overflow_drops_oldest_reservation() {
    let mut m = sys(2);
    let mut now = 0;
    for line in [0x40u64, 0x80, 0xc0] {
        now = m.access(0, 0, MemOp::LoadLinked, line, now).done;
    }
    // Capacity 2: the link on 0x40 was evicted.
    assert!(!m.holds_reservation(0, 0, 0x40));
    assert!(m.holds_reservation(0, 0, 0x80));
    assert!(m.holds_reservation(0, 0, 0xc0));
    assert_eq!(m.reservation_buffer_evictions(), 1);
    let r = m.access(0, 0, MemOp::StoreCond, 0x40, now);
    assert!(!r.sc_ok, "evicted reservation must fail the sc");
}

#[test]
fn stores_clear_buffered_reservations() {
    let mut m = sys(4);
    let t0 = m.access(0, 0, MemOp::LoadLinked, 0x40, 0).done;
    let t1 = m.access(0, 1, MemOp::Store, 0x44, t0).done; // same line
    let r = m.access(0, 0, MemOp::StoreCond, 0x40, t1);
    assert!(!r.sc_ok);
    assert_eq!(m.stats().reservations_cleared_by_stores, 1);
}

#[test]
fn remote_invalidation_clears_buffered_reservations() {
    let mut m = sys(4);
    let t0 = m.access(0, 0, MemOp::LoadLinked, 0x40, 0).done;
    let t1 = m.access(1, 0, MemOp::Store, 0x40, t0).done;
    assert!(!m.holds_reservation(0, 0, 0x40));
    let r = m.access(0, 0, MemOp::StoreCond, 0x40, t1);
    assert!(!r.sc_ok);
    m.check_invariants();
}

#[test]
fn multiple_threads_share_a_buffered_line_entry() {
    let mut m = sys(4);
    let t0 = m.access(0, 0, MemOp::LoadLinked, 0x40, 0).done;
    let t1 = m.access(0, 1, MemOp::LoadLinked, 0x40, t0).done;
    assert!(m.holds_reservation(0, 0, 0x40));
    assert!(m.holds_reservation(0, 1, 0x40));
    // First committer wins, clearing the shared entry.
    let r0 = m.access(0, 0, MemOp::StoreCond, 0x40, t1);
    assert!(r0.sc_ok);
    let r1 = m.access(0, 1, MemOp::StoreCond, 0x40, r0.done);
    assert!(!r1.sc_ok);
}

#[test]
fn capacity_eviction_of_line_drops_buffered_link() {
    let mut cfg = MemConfig::tiny(); // 8 sets x 2 ways
    cfg.prefetch = false;
    cfg.glsc_buffer_entries = Some(8);
    let mut m = MemorySystem::new(cfg, 1, 1);
    let stride = 8 * 64;
    let t0 = m.access(0, 0, MemOp::LoadLinked, 0, 0).done;
    let t1 = m.access(0, 0, MemOp::Load, stride, t0).done;
    let t2 = m.access(0, 0, MemOp::Load, 2 * stride, t1).done; // evicts line 0
    assert!(
        !m.holds_reservation(0, 0, 0),
        "line eviction kills the link"
    );
    let r = m.access(0, 0, MemOp::StoreCond, 0, t2);
    assert!(!r.sc_ok);
}
