//! Fault-injection layer tests at the memory-system level (DESIGN.md §9):
//! determinism per seed, destructive-only semantics, jitter timing, both
//! reservation-tracking modes, and coherence invariants under chaos.

use glsc_mem::{ChaosConfig, ChaosStats, FaultPlan, MemConfig, MemOp, MemorySystem};
use glsc_rng::{rngs::StdRng, Rng, SeedableRng};

fn sys(cores: usize) -> MemorySystem {
    let cfg = MemConfig {
        prefetch: false,
        ..MemConfig::default()
    };
    MemorySystem::new(cfg, cores, 4)
}

/// A plan that fires a single fault kind on every access.
fn only(field: &str, seed: u64) -> ChaosConfig {
    let mut c = ChaosConfig {
        period: 1,
        clear_line_prob: 0.0,
        flush_core_prob: 0.0,
        evict_line_prob: 0.0,
        dram_jitter_prob: 0.0,
        dram_jitter_max: 16,
        buffer_pressure_prob: 0.0,
        ..ChaosConfig::from_seed(seed)
    };
    match field {
        "clear" => c.clear_line_prob = 1.0,
        "jitter" => c.dram_jitter_prob = 1.0,
        "pressure" => c.buffer_pressure_prob = 1.0,
        other => panic!("unknown fault kind {other:?}"),
    }
    c
}

/// Drives a fixed pseudo-random mix of ops over a handful of lines and
/// returns (completion times, chaos stats) for determinism comparison.
fn drive(mut m: MemorySystem, plan_seed: u64, stream_seed: u64) -> (Vec<u64>, ChaosStats) {
    m.install_fault_plan(FaultPlan::from_seed(plan_seed));
    let mut rng = StdRng::seed_from_u64(stream_seed);
    let mut now = 0u64;
    let mut dones = Vec::new();
    for _ in 0..400 {
        let core = rng.random_range(0..m.num_cores());
        let tid = rng.random_range(0..4u8);
        let addr = 0x1000 + 0x40 * rng.random_range(0..8u64);
        let op = match rng.random_range(0..4u8) {
            0 => MemOp::Load,
            1 => MemOp::Store,
            2 => MemOp::LoadLinked,
            _ => MemOp::StoreCond,
        };
        let r = m.access(core, tid, op, addr, now);
        now = now.max(r.done) + 1;
        dones.push(r.done);
    }
    let stats = m.take_fault_plan().unwrap().stats().clone();
    (dones, stats)
}

#[test]
fn same_seed_injects_identical_faults() {
    let (dones_a, stats_a) = drive(sys(2), 7, 1234);
    let (dones_b, stats_b) = drive(sys(2), 7, 1234);
    assert_eq!(stats_a, stats_b, "same seed must produce identical stats");
    assert_eq!(dones_a, dones_b, "same seed must produce identical timing");
    assert!(stats_a.total_destructive() > 0, "plan must actually inject");

    let (_, stats_c) = drive(sys(2), 8, 1234);
    assert_ne!(stats_a, stats_c, "different seeds must diverge");
}

#[test]
fn invariants_hold_throughout_a_chaotic_stream() {
    let mut m = sys(4);
    m.install_fault_plan(FaultPlan::new(ChaosConfig::aggressive(11)));
    let mut rng = StdRng::seed_from_u64(0xFEED);
    let mut now = 0u64;
    for i in 0..600 {
        let core = rng.random_range(0..4usize);
        let tid = rng.random_range(0..4u8);
        let addr = 0x2000 + 0x40 * rng.random_range(0..16u64);
        let op = if rng.random_bool(0.5) {
            MemOp::LoadLinked
        } else {
            MemOp::Store
        };
        let r = m.access(core, tid, op, addr, now);
        now = now.max(r.done) + 1;
        if i % 32 == 0 {
            m.try_check_invariants()
                .unwrap_or_else(|e| panic!("invariant broke under chaos at step {i}: {e}"));
        }
    }
    m.try_check_invariants().unwrap();
    let stats = m.chaos_stats().unwrap();
    assert!(stats.lines_evicted > 0, "eviction injector never fired");
    assert!(stats.reservations_cleared > 0, "clear injector never fired");
}

#[test]
fn cleared_reservation_fails_the_next_sc() {
    let mut m = sys(1);
    let t = m.access(0, 0, MemOp::LoadLinked, 0x1000, 0).done;
    assert!(m.holds_reservation(0, 0, 0x1000));

    m.install_fault_plan(FaultPlan::new(only("clear", 3)));
    // Any later access triggers an injection point that kills the
    // reservation; the sc must then fail rather than falsely succeed.
    let t = m.access(0, 1, MemOp::Load, 0x2000, t).done;
    assert!(!m.holds_reservation(0, 0, 0x1000), "fault must clear it");
    let r = m.access(0, 0, MemOp::StoreCond, 0x1000, t);
    assert!(!r.sc_ok, "sc after a destroyed reservation must fail");
    assert!(m.chaos_stats().unwrap().reservations_cleared > 0);
}

#[test]
fn jitter_delays_dram_fills_only() {
    // Jitter-free plan: cold-miss timing must match the documented
    // l1 + l2 + dram pipeline exactly (chaos framework adds zero cycles).
    let mut m = sys(1);
    m.install_fault_plan(FaultPlan::new(only("clear", 5)));
    let base = m.access(0, 0, MemOp::Load, 0x1000, 0).done;
    assert_eq!(base, 3 + 12 + 280, "non-jitter faults must not slow fills");

    // Jitter on every access: cold misses pay 1..=dram_jitter_max extra.
    let mut m = sys(1);
    m.install_fault_plan(FaultPlan::new(only("jitter", 5)));
    let r = m.access(0, 0, MemOp::Load, 0x1000, 0);
    assert!(r.done > base, "jitter must delay the DRAM fill");
    assert!(r.done <= base + 16, "jitter is bounded by dram_jitter_max");
}

#[test]
fn buffer_pressure_forces_evictions_in_buffer_mode_only() {
    // §3.3 buffer mode: forced evictions pop live entries and count.
    let cfg = MemConfig {
        prefetch: false,
        glsc_buffer_entries: Some(2),
        ..MemConfig::default()
    };
    let mut m = MemorySystem::new(cfg, 1, 4);
    m.install_fault_plan(FaultPlan::new(only("pressure", 9)));
    let t = m.access(0, 0, MemOp::LoadLinked, 0x1000, 0).done;
    let t = m.access(0, 1, MemOp::Load, 0x3000, t).done;
    let r = m.access(0, 0, MemOp::StoreCond, 0x1000, t);
    assert!(!r.sc_ok, "forced buffer eviction must kill the reservation");
    assert!(m.reservation_buffer_evictions() > 0);
    assert!(m.chaos_stats().unwrap().forced_buffer_evictions > 0);

    // Per-line mode: the same plan is a no-op (nothing to pop).
    let mut m = sys(1);
    m.install_fault_plan(FaultPlan::new(only("pressure", 9)));
    let t = m.access(0, 0, MemOp::LoadLinked, 0x1000, 0).done;
    let t = m.access(0, 1, MemOp::Load, 0x3000, t).done;
    let r = m.access(0, 0, MemOp::StoreCond, 0x1000, t);
    assert!(r.sc_ok, "buffer pressure must not affect per-line mode");
    assert_eq!(m.chaos_stats().unwrap().forced_buffer_evictions, 0);
}

#[test]
fn take_fault_plan_restores_clean_behaviour() {
    let mut m = sys(1);
    m.install_fault_plan(FaultPlan::new(only("jitter", 21)));
    let jittered = m.access(0, 0, MemOp::Load, 0x1000, 0);
    assert!(jittered.done > 295);

    let plan = m.take_fault_plan().expect("plan was installed");
    assert!(plan.stats().jitter_events > 0);
    assert!(m.fault_plan().is_none());
    assert!(m.chaos_stats().is_none());

    // A fresh cold miss after removal pays exactly the clean pipeline:
    // any pending (un-consumed) jitter is discarded with the plan.
    let t = jittered.done;
    let clean = m.access(0, 0, MemOp::Load, 0x8000, t);
    assert_eq!(clean.done, t + 3 + 12 + 280);
}
