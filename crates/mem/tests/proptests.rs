//! Property-based tests for the memory system.

use glsc_mem::{Backing, MemConfig, MemOp, MemorySystem, StridePrefetcher, TagArray};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// The backing store behaves exactly like a flat map of words.
    #[test]
    fn backing_matches_oracle(ops in proptest::collection::vec((0u64..1 << 20, any::<u32>(), any::<bool>()), 1..200)) {
        let mut b = Backing::new();
        let mut oracle: HashMap<u64, u32> = HashMap::new();
        for (raw, val, is_write) in ops {
            let addr = raw & !3;
            if is_write {
                b.write_u32(addr, val);
                oracle.insert(addr, val);
            } else {
                let expect = oracle.get(&addr).copied().unwrap_or(0);
                prop_assert_eq!(b.read_u32(addr), expect);
            }
        }
    }

    /// A tag array never holds more than `assoc` lines per set, and a line
    /// just inserted is always resident.
    #[test]
    fn tag_array_capacity_invariant(lines in proptest::collection::vec(0u64..64, 1..100)) {
        let mut a: TagArray<u64> = TagArray::new(4, 2, 64);
        for (i, l) in lines.iter().enumerate() {
            let line = l * 64;
            if a.peek(line).is_none() {
                a.insert(line, i as u64);
            }
            prop_assert!(a.peek(line).is_some());
            prop_assert!(a.len() <= 4 * 2);
        }
        // Per-set occupancy <= assoc.
        let mut per_set: HashMap<usize, usize> = HashMap::new();
        for (line, _) in a.iter() {
            *per_set.entry(a.set_index(line)).or_default() += 1;
        }
        for (_, n) in per_set {
            prop_assert!(n <= 2);
        }
    }

    /// Coherence invariants hold after arbitrary access interleavings, and
    /// completion times never precede the minimum L1 latency.
    #[test]
    fn coherence_invariants_random(
        ops in proptest::collection::vec(
            (0usize..3, 0u8..4, 0u64..64, 0usize..4),
            1..300,
        )
    ) {
        let mut cfg = MemConfig::tiny();
        cfg.prefetch = false;
        let mut m = MemorySystem::new(cfg, 3, 4);
        let mut now = 0u64;
        for (core, tid, line, kind) in ops {
            let addr = line * 64 + 4 * (tid as u64);
            let op = match kind {
                0 => MemOp::Load,
                1 => MemOp::Store,
                2 => MemOp::LoadLinked,
                _ => MemOp::StoreCond,
            };
            let r = m.access(core, tid, op, addr, now);
            prop_assert!(r.done >= now + 3);
            now += 1;
        }
        m.check_invariants();
    }

    /// An sc can only succeed if the same thread ll'ed the line with no
    /// intervening store to it from anyone (tracked with an oracle).
    #[test]
    fn sc_success_implies_valid_reservation(
        ops in proptest::collection::vec(
            (0usize..2, 0u8..2, 0u64..4, 0usize..3),
            1..200,
        )
    ) {
        let mut cfg = MemConfig::tiny();
        cfg.prefetch = false;
        let mut m = MemorySystem::new(cfg, 2, 2);
        // oracle: (core, line) -> set of linked tids; stores clear globally.
        let mut res: HashMap<(usize, u64), u8> = HashMap::new();
        let mut now = 0u64;
        for (core, tid, lineno, kind) in ops {
            let line = lineno * 64;
            match kind {
                0 => { // ll
                    m.access(core, tid, MemOp::LoadLinked, line, now);
                    *res.entry((core, line)).or_default() |= 1 << tid;
                }
                1 => { // store clears reservations on that line everywhere
                    m.access(core, tid, MemOp::Store, line, now);
                    for c in 0..2 {
                        res.insert((c, line), 0);
                    }
                }
                _ => { // sc
                    let r = m.access(core, tid, MemOp::StoreCond, line, now);
                    if r.sc_ok {
                        // Our oracle is *less* conservative than the
                        // hardware (no evictions), so hardware success
                        // implies oracle validity.
                        prop_assert!(res.get(&(core, line)).copied().unwrap_or(0) & (1 << tid) != 0,
                            "sc succeeded without an oracle reservation");
                        for c in 0..2 {
                            res.insert((c, line), 0);
                        }
                    }
                }
            }
            now += 1;
        }
        m.check_invariants();
    }

    /// The prefetcher only emits addresses along the observed stride.
    #[test]
    fn prefetcher_targets_follow_stride(start in 0u64..1000, stride in 1i64..8, n in 3usize..20) {
        let mut p = StridePrefetcher::new(1, 2, 64);
        let mut expected_ok = true;
        for i in 0..n {
            let line = (start as i64 + stride * i as i64) as u64 * 64;
            for t in p.observe(0, line) {
                // Every target is ahead of the current line by a multiple
                // of the stride.
                let delta = t as i64 - line as i64;
                expected_ok &= delta % (stride * 64) == 0 && delta > 0;
            }
        }
        prop_assert!(expected_ok);
    }
}
