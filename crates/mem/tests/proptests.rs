//! Randomized property tests for the memory system.
//!
//! These were originally written with `proptest`; the offline build
//! environment cannot fetch it, so they now run as seeded loops over
//! `glsc-rng`. Each case prints its seed on failure for reproduction.

use glsc_mem::{Backing, MemConfig, MemOp, MemorySystem, StridePrefetcher, TagArray};
use glsc_rng::rngs::StdRng;
use glsc_rng::{Rng, SeedableRng};
use std::collections::HashMap;

/// The backing store behaves exactly like a flat map of words.
#[test]
fn backing_matches_oracle() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0x3E3_0001 ^ seed);
        let n = rng.random_range(1..200usize);
        let mut b = Backing::new();
        let mut oracle: HashMap<u64, u32> = HashMap::new();
        for _ in 0..n {
            let raw = rng.random_range(0..1u64 << 20);
            let val: u32 = rng.random();
            let is_write: bool = rng.random();
            let addr = raw & !3;
            if is_write {
                b.write_u32(addr, val);
                oracle.insert(addr, val);
            } else {
                let expect = oracle.get(&addr).copied().unwrap_or(0);
                assert_eq!(b.read_u32(addr), expect, "seed {seed}, addr {addr:#x}");
            }
        }
    }
}

/// A tag array never holds more than `assoc` lines per set, and a line
/// just inserted is always resident.
#[test]
fn tag_array_capacity_invariant() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0x3E3_0002 ^ seed);
        let n = rng.random_range(1..100usize);
        let lines: Vec<u64> = (0..n).map(|_| rng.random_range(0..64u64)).collect();
        let mut a: TagArray<u64> = TagArray::new(4, 2, 64);
        for (i, l) in lines.iter().enumerate() {
            let line = l * 64;
            if a.peek(line).is_none() {
                a.insert(line, i as u64);
            }
            assert!(a.peek(line).is_some(), "seed {seed}");
            assert!(a.len() <= 4 * 2, "seed {seed}");
        }
        // Per-set occupancy <= assoc.
        let mut per_set: HashMap<usize, usize> = HashMap::new();
        for (line, _) in a.iter() {
            *per_set.entry(a.set_index(line)).or_default() += 1;
        }
        for (_, n) in per_set {
            assert!(n <= 2, "seed {seed}");
        }
    }
}

/// Coherence invariants hold after arbitrary access interleavings, and
/// completion times never precede the minimum L1 latency.
#[test]
fn coherence_invariants_random() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0x3E3_0003 ^ seed);
        let n = rng.random_range(1..300usize);
        let mut cfg = MemConfig::tiny();
        cfg.prefetch = false;
        let mut m = MemorySystem::new(cfg, 3, 4);
        for it in 0..n {
            let now = it as u64;
            let core = rng.random_range(0..3usize);
            let tid = rng.random_range(0..4u8);
            let line = rng.random_range(0..64u64);
            let kind = rng.random_range(0..4usize);
            let addr = line * 64 + 4 * (tid as u64);
            let op = match kind {
                0 => MemOp::Load,
                1 => MemOp::Store,
                2 => MemOp::LoadLinked,
                _ => MemOp::StoreCond,
            };
            let r = m.access(core, tid, op, addr, now);
            assert!(r.done >= now + 3, "seed {seed}");
        }
        m.check_invariants();
    }
}

/// An sc can only succeed if the same thread ll'ed the line with no
/// intervening store to it from anyone (tracked with an oracle).
#[test]
fn sc_success_implies_valid_reservation() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0x3E3_0004 ^ seed);
        let n = rng.random_range(1..200usize);
        let mut cfg = MemConfig::tiny();
        cfg.prefetch = false;
        let mut m = MemorySystem::new(cfg, 2, 2);
        // oracle: (core, line) -> set of linked tids; stores clear globally.
        let mut res: HashMap<(usize, u64), u8> = HashMap::new();
        for it in 0..n {
            let now = it as u64;
            let core = rng.random_range(0..2usize);
            let tid = rng.random_range(0..2u8);
            let lineno = rng.random_range(0..4u64);
            let kind = rng.random_range(0..3usize);
            let line = lineno * 64;
            match kind {
                0 => {
                    // ll
                    m.access(core, tid, MemOp::LoadLinked, line, now);
                    *res.entry((core, line)).or_default() |= 1 << tid;
                }
                1 => {
                    // store clears reservations on that line everywhere
                    m.access(core, tid, MemOp::Store, line, now);
                    for c in 0..2 {
                        res.insert((c, line), 0);
                    }
                }
                _ => {
                    // sc
                    let r = m.access(core, tid, MemOp::StoreCond, line, now);
                    if r.sc_ok {
                        // Our oracle is *less* conservative than the
                        // hardware (no evictions), so hardware success
                        // implies oracle validity.
                        assert!(
                            res.get(&(core, line)).copied().unwrap_or(0) & (1 << tid) != 0,
                            "seed {seed}: sc succeeded without an oracle reservation"
                        );
                        for c in 0..2 {
                            res.insert((c, line), 0);
                        }
                    }
                }
            }
        }
        m.check_invariants();
    }
}

/// The prefetcher only emits addresses along the observed stride.
#[test]
fn prefetcher_targets_follow_stride() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0x3E3_0005 ^ seed);
        let start = rng.random_range(0..1000u64);
        let stride = rng.random_range(1..8i64);
        let n = rng.random_range(3..20usize);
        let mut p = StridePrefetcher::new(1, 2, 64);
        let mut expected_ok = true;
        for i in 0..n {
            let line = (start as i64 + stride * i as i64) as u64 * 64;
            for t in p.observe(0, line) {
                // Every target is ahead of the current line by a multiple
                // of the stride.
                let delta = t as i64 - line as i64;
                expected_ok &= delta % (stride * 64) == 0 && delta > 0;
            }
        }
        assert!(expected_ok, "seed {seed}");
    }
}
