//! Memory-system configuration (Table 1 of the paper).

use crate::arbitration::ArbitrationPolicy;
use crate::errors::ConfigError;
use crate::noc::NocConfig;
use crate::ordering::MemoryOrder;

/// Parameters of the simulated memory hierarchy. [`MemConfig::default`]
/// reproduces Table 1 of the paper.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemConfig {
    /// Cache line size in bytes (64).
    pub line_bytes: u64,
    /// Private L1 data cache capacity in bytes (32 KB).
    pub l1_bytes: u64,
    /// L1 associativity (4).
    pub l1_assoc: usize,
    /// L1 hit latency in cycles (3).
    pub l1_hit_latency: u64,
    /// Shared L2 capacity in bytes (16 MB).
    pub l2_bytes: u64,
    /// L2 associativity (8).
    pub l2_assoc: usize,
    /// Number of L2 banks (16).
    pub l2_banks: usize,
    /// Minimum L2 access latency in cycles, including the interconnect (12).
    pub l2_latency: u64,
    /// Cycles a bank stays busy per request (models bank contention).
    pub l2_bank_occupancy: u64,
    /// Extra latency when data must be forwarded from another core's
    /// modified L1 copy (cache-to-cache transfer).
    pub dirty_forward_extra: u64,
    /// Main-memory access latency in cycles (280).
    pub dram_latency: u64,
    /// GLSC entry implementation (§3.3): `None` = per-line tag bits (the
    /// default, "(1 + #SMT threads) bits per cache line"); `Some(k)` = a
    /// fully-associative buffer of `k` entries per L1 (the paper's
    /// alternative design; overflow conservatively drops the oldest
    /// reservation).
    pub glsc_buffer_entries: Option<usize>,
    /// Enable the L1 hardware stride prefetcher (§4.1).
    pub prefetch: bool,
    /// Lines fetched ahead once a stride stream is confirmed.
    pub prefetch_degree: usize,
    /// On-die interconnect between the L1s and the L2 banks. The default
    /// [`Topology::Ideal`](crate::Topology) fabric reproduces the
    /// historical fixed-latency timing exactly.
    pub noc: NocConfig,
    /// Reservation arbitration policy applied to store-conditionals
    /// (DESIGN.md §12). The default [`ArbitrationPolicy::Free`] reproduces
    /// the historical first-committer-wins timing exactly.
    pub arbitration: ArbitrationPolicy,
    /// Memory-consistency model implemented by the per-core LSUs
    /// (DESIGN.md §17). The default [`MemoryOrder::Sc`] reproduces the
    /// historical sequentially-consistent timing exactly.
    pub memory_order: MemoryOrder,
}

impl Default for MemConfig {
    fn default() -> Self {
        Self {
            line_bytes: 64,
            l1_bytes: 32 * 1024,
            l1_assoc: 4,
            l1_hit_latency: 3,
            l2_bytes: 16 * 1024 * 1024,
            l2_assoc: 8,
            l2_banks: 16,
            l2_latency: 12,
            l2_bank_occupancy: 2,
            dirty_forward_extra: 12,
            dram_latency: 280,
            glsc_buffer_entries: None,
            prefetch: true,
            prefetch_degree: 2,
            noc: NocConfig::ideal(),
            arbitration: ArbitrationPolicy::Free,
            memory_order: MemoryOrder::Sc,
        }
    }
}

impl MemConfig {
    /// A small configuration for unit tests: tiny caches so that evictions
    /// and set conflicts are easy to trigger.
    pub fn tiny() -> Self {
        Self {
            line_bytes: 64,
            l1_bytes: 1024,
            l1_assoc: 2,
            l1_hit_latency: 3,
            l2_bytes: 8 * 1024,
            l2_assoc: 2,
            l2_banks: 2,
            l2_latency: 12,
            l2_bank_occupancy: 2,
            dirty_forward_extra: 12,
            dram_latency: 280,
            glsc_buffer_entries: None,
            prefetch: false,
            prefetch_degree: 2,
            noc: NocConfig::ideal(),
            arbitration: ArbitrationPolicy::Free,
            memory_order: MemoryOrder::Sc,
        }
    }

    /// Number of L1 sets.
    pub fn l1_sets(&self) -> usize {
        (self.l1_bytes / self.line_bytes) as usize / self.l1_assoc
    }

    /// Number of sets in each L2 bank.
    pub fn l2_sets_per_bank(&self) -> usize {
        (self.l2_bytes / self.line_bytes) as usize / self.l2_assoc / self.l2_banks
    }

    /// The L2 bank serving a given line address (consecutive lines go to
    /// consecutive banks, as in a physically distributed L2).
    pub fn bank_of(&self, line: u64) -> usize {
        ((line / self.line_bytes) % self.l2_banks as u64) as usize
    }

    /// Checks internal consistency (powers of two, non-zero ways),
    /// returning the first violated constraint as a typed value.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found; see its variants for the
    /// complete list of constraints.
    pub fn check(&self) -> Result<(), ConfigError> {
        if !self.line_bytes.is_power_of_two() {
            return Err(ConfigError::LineBytesNotPowerOfTwo {
                line_bytes: self.line_bytes,
            });
        }
        if self.l1_assoc == 0 || self.l2_assoc == 0 {
            return Err(ConfigError::ZeroAssociativity);
        }
        if self.l2_banks == 0 {
            return Err(ConfigError::NoBanks);
        }
        if !self
            .l1_bytes
            .is_multiple_of(self.line_bytes * self.l1_assoc as u64)
        {
            return Err(ConfigError::L1NotSetDivisible {
                l1_bytes: self.l1_bytes,
                line_bytes: self.line_bytes,
                assoc: self.l1_assoc,
            });
        }
        if self.l1_sets() == 0 {
            return Err(ConfigError::NoL1Sets);
        }
        if self.l2_sets_per_bank() == 0 {
            return Err(ConfigError::NoL2Sets);
        }
        if self.glsc_buffer_entries == Some(0) {
            return Err(ConfigError::ZeroBufferEntries);
        }
        if self.arbitration == (ArbitrationPolicy::NackHoldoff { window: 0 }) {
            return Err(ConfigError::ZeroHoldoffWindow);
        }
        self.noc.check()?;
        Ok(())
    }

    /// Validates internal consistency (powers of two, non-zero ways).
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message when the configuration is
    /// inconsistent. Use [`MemConfig::check`] for a non-panicking,
    /// typed alternative.
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_1() {
        let c = MemConfig::default();
        c.validate();
        assert_eq!(c.l1_sets(), 128); // 32KB / 64B / 4-way
        assert_eq!(c.l1_hit_latency, 3);
        assert_eq!(c.l2_latency, 12);
        assert_eq!(c.dram_latency, 280);
        assert_eq!(c.l2_sets_per_bank(), 2048); // 16MB / 64B / 8 / 16
        assert_eq!(c.memory_order, MemoryOrder::Sc);
    }

    #[test]
    fn banking_interleaves_lines() {
        let c = MemConfig::default();
        assert_eq!(c.bank_of(0), 0);
        assert_eq!(c.bank_of(64), 1);
        assert_eq!(c.bank_of(64 * 16), 0);
    }

    #[test]
    fn tiny_is_valid() {
        MemConfig::tiny().validate();
        assert_eq!(MemConfig::tiny().l1_sets(), 8);
    }

    #[test]
    fn rejects_non_power_of_two_line() {
        let c = MemConfig {
            line_bytes: 48,
            ..MemConfig::tiny()
        };
        assert_eq!(
            c.check(),
            Err(ConfigError::LineBytesNotPowerOfTwo { line_bytes: 48 })
        );
    }

    #[test]
    fn rejects_zero_associativity() {
        let c = MemConfig {
            l1_assoc: 0,
            ..MemConfig::tiny()
        };
        assert_eq!(c.check(), Err(ConfigError::ZeroAssociativity));
        let c = MemConfig {
            l2_assoc: 0,
            ..MemConfig::tiny()
        };
        assert_eq!(c.check(), Err(ConfigError::ZeroAssociativity));
    }

    #[test]
    fn rejects_zero_banks() {
        let c = MemConfig {
            l2_banks: 0,
            ..MemConfig::tiny()
        };
        assert_eq!(c.check(), Err(ConfigError::NoBanks));
    }

    #[test]
    fn rejects_undivisible_l1() {
        let c = MemConfig {
            l1_bytes: 1000,
            ..MemConfig::tiny()
        };
        assert_eq!(
            c.check(),
            Err(ConfigError::L1NotSetDivisible {
                l1_bytes: 1000,
                line_bytes: 64,
                assoc: 2,
            })
        );
    }

    #[test]
    fn rejects_zero_l1_sets() {
        let c = MemConfig {
            l1_bytes: 0,
            ..MemConfig::tiny()
        };
        assert_eq!(c.check(), Err(ConfigError::NoL1Sets));
    }

    #[test]
    fn rejects_zero_l2_sets() {
        let c = MemConfig {
            l2_bytes: 128,
            l2_assoc: 2,
            l2_banks: 2,
            ..MemConfig::tiny()
        };
        assert_eq!(c.check(), Err(ConfigError::NoL2Sets));
    }

    #[test]
    fn rejects_empty_reservation_buffer() {
        let c = MemConfig {
            glsc_buffer_entries: Some(0),
            ..MemConfig::tiny()
        };
        assert_eq!(c.check(), Err(ConfigError::ZeroBufferEntries));
    }

    #[test]
    fn rejects_zero_holdoff_window() {
        let c = MemConfig {
            arbitration: ArbitrationPolicy::NackHoldoff { window: 0 },
            ..MemConfig::tiny()
        };
        assert_eq!(c.check(), Err(ConfigError::ZeroHoldoffWindow));
        // The other policies need no parameters and always pass.
        for policy in [ArbitrationPolicy::Free, ArbitrationPolicy::AgedPriority] {
            let c = MemConfig {
                arbitration: policy,
                ..MemConfig::tiny()
            };
            assert_eq!(c.check(), Ok(()));
        }
    }

    #[test]
    fn rejects_bad_noc_parameters() {
        let c = MemConfig {
            noc: NocConfig {
                link_latency: 0,
                ..NocConfig::ring()
            },
            ..MemConfig::tiny()
        };
        assert_eq!(c.check(), Err(ConfigError::NocZeroLinkLatency));
        let c = MemConfig {
            noc: NocConfig {
                link_occupancy: 0,
                ..NocConfig::crossbar()
            },
            ..MemConfig::tiny()
        };
        assert_eq!(c.check(), Err(ConfigError::NocZeroLinkBandwidth));
        let c = MemConfig {
            noc: NocConfig::ring().with_nodes(0),
            ..MemConfig::tiny()
        };
        assert_eq!(c.check(), Err(ConfigError::NocZeroNodes));
        // A well-formed non-ideal fabric passes.
        let c = MemConfig {
            noc: NocConfig::ring(),
            ..MemConfig::tiny()
        };
        assert_eq!(c.check(), Ok(()));
    }

    #[test]
    #[should_panic(expected = "line size must be a power of two")]
    fn validate_panics_with_message() {
        MemConfig {
            line_bytes: 48,
            ..MemConfig::tiny()
        }
        .validate();
    }
}

glsc_wire::wire_struct!(MemConfig {
    line_bytes,
    l1_bytes,
    l1_assoc,
    l1_hit_latency,
    l2_bytes,
    l2_assoc,
    l2_banks,
    l2_latency,
    l2_bank_occupancy,
    dirty_forward_extra,
    dram_latency,
    glsc_buffer_entries,
    prefetch,
    prefetch_degree,
    noc,
    arbitration,
    memory_order,
});
