//! Per-core hardware stride prefetcher (paper §4.1: "each core has a
//! private L1 data cache with a hardware stride prefetcher").
//!
//! A small table tracks one stream per SMT thread. When the same line
//! stride is observed twice in a row, the prefetcher emits the addresses of
//! the next `degree` lines along the stride.

/// Stride detection state for one stream.
#[derive(Clone, Copy, Debug, Default)]
struct Stream {
    last_line: u64,
    stride: i64,
    confirmed: bool,
    valid: bool,
}

/// A per-core stride prefetcher with one tracked stream per SMT thread.
#[derive(Clone, Debug)]
pub struct StridePrefetcher {
    streams: Vec<Stream>,
    degree: usize,
    line_bytes: u64,
}

impl StridePrefetcher {
    /// Creates a prefetcher for `threads` SMT streams issuing `degree`
    /// lines ahead.
    pub fn new(threads: usize, degree: usize, line_bytes: u64) -> Self {
        Self {
            streams: vec![Stream::default(); threads],
            degree,
            line_bytes,
        }
    }

    /// Observes a demand access from `tid` to line address `line`; returns
    /// the line addresses to prefetch (empty until a stride is confirmed).
    pub fn observe(&mut self, tid: usize, line: u64) -> Vec<u64> {
        let s = &mut self.streams[tid];
        let mut out = Vec::new();
        if s.valid {
            if line == s.last_line {
                return out; // same line: no new information
            }
            let stride = line as i64 - s.last_line as i64;
            if s.stride == stride {
                if s.confirmed {
                    // Steady stream: fetch ahead.
                    for k in 1..=self.degree as i64 {
                        let target = line as i64 + stride * k;
                        if target >= 0 {
                            out.push(target as u64);
                        }
                    }
                } else {
                    s.confirmed = true;
                    // First confirmation: fetch the immediate next line.
                    let target = line as i64 + stride;
                    if target >= 0 {
                        out.push(target as u64);
                    }
                }
            } else {
                s.confirmed = false;
            }
            s.stride = stride;
        }
        s.valid = true;
        s.last_line = line;
        debug_assert_eq!(line % self.line_bytes, 0, "prefetcher fed non-line address");
        out
    }

    /// Forgets all stream state (e.g. across program phases in tests).
    pub fn reset(&mut self) {
        for s in &mut self.streams {
            *s = Stream::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_stream_confirms_then_prefetches() {
        let mut p = StridePrefetcher::new(1, 2, 64);
        assert!(p.observe(0, 0).is_empty()); // first touch
        assert!(p.observe(0, 64).is_empty()); // stride candidate
        assert_eq!(p.observe(0, 128), vec![192]); // confirmed
        assert_eq!(p.observe(0, 192), vec![256, 320]); // steady
    }

    #[test]
    fn random_stream_never_confirms() {
        let mut p = StridePrefetcher::new(1, 2, 64);
        assert!(p.observe(0, 0).is_empty());
        assert!(p.observe(0, 640).is_empty());
        assert!(p.observe(0, 64).is_empty());
        assert!(p.observe(0, 1024).is_empty());
    }

    #[test]
    fn negative_stride_supported() {
        let mut p = StridePrefetcher::new(1, 1, 64);
        assert!(p.observe(0, 640).is_empty());
        assert!(p.observe(0, 576).is_empty());
        assert_eq!(p.observe(0, 512), vec![448]);
    }

    #[test]
    fn streams_are_per_thread() {
        let mut p = StridePrefetcher::new(2, 1, 64);
        p.observe(0, 0);
        p.observe(1, 1024);
        p.observe(0, 64);
        p.observe(1, 2048);
        // Thread 0 confirms independently of thread 1's unrelated stream.
        assert_eq!(p.observe(0, 128), vec![192]);
    }

    #[test]
    fn repeated_same_line_is_ignored() {
        let mut p = StridePrefetcher::new(1, 1, 64);
        p.observe(0, 0);
        p.observe(0, 64);
        assert!(p.observe(0, 64).is_empty());
        assert_eq!(p.observe(0, 128), vec![192]);
    }

    #[test]
    fn reset_clears_state() {
        let mut p = StridePrefetcher::new(1, 1, 64);
        p.observe(0, 0);
        p.observe(0, 64);
        p.reset();
        assert!(p.observe(0, 128).is_empty());
        assert!(p.observe(0, 192).is_empty());
        assert_eq!(p.observe(0, 256), vec![320]);
    }
}

glsc_wire::wire_struct!(Stream {
    last_line,
    stride,
    confirmed,
    valid,
});
glsc_wire::wire_struct!(StridePrefetcher {
    streams,
    degree,
    line_bytes,
});
