//! On-die interconnect (NoC) model: the fabric between the private L1s
//! and the shared banked L2/directory (§4.1, Table 1).
//!
//! The paper's CMP connects every core's L1 to the physically banked L2
//! over an on-die interconnect whose minimum cost is folded into the
//! 12-cycle L2 latency. This module makes that fabric an explicit,
//! cycle-attributed subsystem: every coherence transaction is decomposed
//! into typed messages ([`MsgClass`]) that traverse topology-dependent
//! links, each link being a [`BusyHorizon`] that serializes messages at a
//! configurable per-message occupancy (the inverse of its bandwidth).
//!
//! Three topologies are modeled:
//!
//! * [`Topology::Ideal`] — the historical model: infinite bandwidth,
//!   zero-latency traversal. Message accounting still runs, but timing is
//!   **bit-identical** to the pre-NoC simulator (enforced by the
//!   `noc_ideal_differential` test and a CI byte-check of `results/`).
//! * [`Topology::Crossbar`] — a full crossbar with per-destination output
//!   ports: a message pays one [`link_latency`](NocConfig::link_latency)
//!   hop and queues only against other messages targeting the same node.
//! * [`Topology::Ring`] — a bidirectional ring of `cores + banks` stops
//!   (cores first, then banks). A message takes the direction with fewer
//!   hops (ties clockwise) and reserves every directed link segment along
//!   its path in order, paying `link_latency` per hop plus any queueing
//!   at busy links. This is where 16+ threads visibly bend the Fig. 6
//!   curves (the `noc_contention` figure).
//!
//! Everything is deterministic: link reservation order is the simulator's
//! access order, and the only nondeterminism hook is the chaos layer's
//! seeded link-delay jitter (destructive-only: it delays the next
//! message's departure, never reorders or drops).

use crate::errors::ConfigError;
use crate::occupancy::BusyHorizon;
use crate::stats::MemStats;

/// Interconnect topology selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Topology {
    /// Infinite-bandwidth, zero-latency fabric reproducing the pre-NoC
    /// fixed-latency model exactly (the default).
    Ideal,
    /// Full crossbar: one hop, contention only at the destination port.
    Crossbar,
    /// Bidirectional ring over `cores + banks` stops.
    Ring,
}

impl Topology {
    /// Short label used in figure tables and job keys.
    pub fn label(self) -> &'static str {
        match self {
            Topology::Ideal => "ideal",
            Topology::Crossbar => "xbar",
            Topology::Ring => "ring",
        }
    }
}

/// The coherence-protocol message classes that travel the fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MsgClass {
    /// Read request (load miss): Shared-state fill.
    GetS,
    /// Write request (store miss): Modified-state fill or upgrade.
    GetX,
    /// Data reply / upgrade grant from a bank to a core.
    DataReply,
    /// Invalidation (or downgrade probe) from the directory to an L1.
    Inv,
    /// Invalidation acknowledgement from an L1 back to the directory.
    InvAck,
    /// GLSC probe: a `vgatherlink`/`ll` fill or a `vscattercond`/`sc`
    /// upgrade (§3.3) — kept distinct so the atomics' fabric cost is
    /// measurable per Schweizer et al.
    GlscProbe,
    /// Dirty-line writeback from an L1 to its home bank.
    Writeback,
    /// Hardware-prefetcher fill request (§4.1).
    PrefetchFill,
}

impl MsgClass {
    /// Number of message classes (array-counter dimension).
    pub const COUNT: usize = 8;

    /// All classes, in counter-index order.
    pub const ALL: [MsgClass; MsgClass::COUNT] = [
        MsgClass::GetS,
        MsgClass::GetX,
        MsgClass::DataReply,
        MsgClass::Inv,
        MsgClass::InvAck,
        MsgClass::GlscProbe,
        MsgClass::Writeback,
        MsgClass::PrefetchFill,
    ];

    /// Stable counter index of this class.
    pub fn index(self) -> usize {
        match self {
            MsgClass::GetS => 0,
            MsgClass::GetX => 1,
            MsgClass::DataReply => 2,
            MsgClass::Inv => 3,
            MsgClass::InvAck => 4,
            MsgClass::GlscProbe => 5,
            MsgClass::Writeback => 6,
            MsgClass::PrefetchFill => 7,
        }
    }

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            MsgClass::GetS => "gets",
            MsgClass::GetX => "getx",
            MsgClass::DataReply => "data",
            MsgClass::Inv => "inv",
            MsgClass::InvAck => "invack",
            MsgClass::GlscProbe => "glsc",
            MsgClass::Writeback => "wb",
            MsgClass::PrefetchFill => "pf",
        }
    }
}

/// Interconnect configuration, embedded in
/// [`MemConfig`](crate::MemConfig) as `noc`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NocConfig {
    /// Fabric topology. [`Topology::Ideal`] reproduces the pre-NoC
    /// fixed-latency timing exactly.
    pub topology: Topology,
    /// Cycles per link traversal (per hop). Must be non-zero for
    /// non-ideal topologies.
    pub link_latency: u64,
    /// Cycles a link stays busy per message — the inverse of its
    /// bandwidth (1 = one message per cycle per link). Must be non-zero
    /// for non-ideal topologies.
    pub link_occupancy: u64,
    /// Optional declared stop count, cross-checked against the actual
    /// fabric shape (`cores + l2_banks`) when the memory system is built.
    /// Configurations generated from external descriptions set this so a
    /// bank-count mismatch is a typed error instead of a silently
    /// different fabric.
    pub nodes: Option<usize>,
}

impl Default for NocConfig {
    fn default() -> Self {
        Self::ideal()
    }
}

impl NocConfig {
    /// The ideal (pre-NoC-equivalent) fabric.
    pub fn ideal() -> Self {
        Self {
            topology: Topology::Ideal,
            link_latency: 0,
            link_occupancy: 0,
            nodes: None,
        }
    }

    /// A bidirectional ring with 1-cycle hops and 1-cycle link occupancy.
    pub fn ring() -> Self {
        Self {
            topology: Topology::Ring,
            link_latency: 1,
            link_occupancy: 1,
            nodes: None,
        }
    }

    /// A full crossbar with 1-cycle traversal and 1-cycle port occupancy.
    pub fn crossbar() -> Self {
        Self {
            topology: Topology::Crossbar,
            link_latency: 1,
            link_occupancy: 1,
            nodes: None,
        }
    }

    /// Declares the expected stop count (builder style); see
    /// [`NocConfig::nodes`].
    #[must_use]
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = Some(nodes);
        self
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// [`ConfigError::NocZeroLinkLatency`] or
    /// [`ConfigError::NocZeroLinkBandwidth`] for a non-ideal topology with
    /// a zero parameter, and [`ConfigError::NocZeroNodes`] when an
    /// explicit stop count of zero is declared (a fabric with no links).
    /// The stop-count cross-check against the actual core/bank shape runs
    /// in [`MemorySystem::try_new`](crate::MemorySystem::try_new), which
    /// knows the core count.
    pub fn check(&self) -> Result<(), ConfigError> {
        if self.nodes == Some(0) {
            return Err(ConfigError::NocZeroNodes);
        }
        if self.topology != Topology::Ideal {
            if self.link_latency == 0 {
                return Err(ConfigError::NocZeroLinkLatency);
            }
            if self.link_occupancy == 0 {
                return Err(ConfigError::NocZeroLinkBandwidth);
            }
        }
        Ok(())
    }
}

/// Fabric event counters, embedded in [`MemStats`] as `noc` and carried
/// through `RunReport` and the bench codec.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NocStats {
    /// Messages sent per [`MsgClass`] (indexed by [`MsgClass::index`]).
    pub msgs: [u64; MsgClass::COUNT],
    /// Total link traversals (1 per message on Ideal/Crossbar, path
    /// length on Ring).
    pub hops: u64,
    /// Total cycles messages spent queued behind busy links — the
    /// fabric-contention metric the `noc_contention` figure reports.
    pub queue_cycles: u64,
    /// Messages per directed link, indexed by link id (length 1 for
    /// Ideal, `nodes` for Crossbar input ports, `2 * nodes` for the
    /// Ring's clockwise-then-counterclockwise segments).
    pub link_msgs: Vec<u64>,
}

impl NocStats {
    /// Total messages across all classes.
    pub fn total_msgs(&self) -> u64 {
        self.msgs.iter().sum()
    }

    /// Messages of one class.
    pub fn class(&self, c: MsgClass) -> u64 {
        self.msgs[c.index()]
    }

    /// Mean queueing delay per message (0.0 when no messages were sent).
    pub fn queue_cycles_per_msg(&self) -> f64 {
        let total = self.total_msgs();
        if total == 0 {
            0.0
        } else {
            self.queue_cycles as f64 / total as f64
        }
    }
}

/// The live interconnect: topology, per-link busy horizons, and the
/// chaos layer's pending link-delay jitter. Owned by
/// [`MemorySystem`](crate::MemorySystem); cloned wholesale by snapshots,
/// so in-flight link reservations survive snapshot/restore exactly.
#[derive(Clone, Debug)]
pub struct Noc {
    cfg: NocConfig,
    cores: usize,
    banks: usize,
    links: Vec<BusyHorizon>,
    /// Extra cycles the next message's departure must absorb (scheduled
    /// by the chaos link-jitter injector; always 0 without a fault plan).
    jitter_next_msg: u64,
}

impl Noc {
    /// Builds the fabric for `cores` L1s and `banks` L2 banks. The
    /// configuration must already have passed [`NocConfig::check`].
    pub fn new(cfg: NocConfig, cores: usize, banks: usize) -> Self {
        let nodes = cores + banks;
        let links = match cfg.topology {
            Topology::Ideal => vec![BusyHorizon::new(); 1],
            Topology::Crossbar => vec![BusyHorizon::new(); nodes],
            Topology::Ring => vec![BusyHorizon::new(); 2 * nodes],
        };
        Self {
            cfg,
            cores,
            banks,
            links,
            jitter_next_msg: 0,
        }
    }

    /// The configuration in effect.
    pub fn cfg(&self) -> &NocConfig {
        &self.cfg
    }

    /// Number of fabric stops (`cores + banks`).
    pub fn num_nodes(&self) -> usize {
        self.cores + self.banks
    }

    /// Number of directed links (1 for Ideal).
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Fabric stop of core `c`'s L1.
    pub fn core_node(&self, c: usize) -> usize {
        debug_assert!(c < self.cores);
        c
    }

    /// Fabric stop of L2 bank `b`.
    pub fn bank_node(&self, b: usize) -> usize {
        debug_assert!(b < self.banks);
        self.cores + b
    }

    /// Schedules `extra` cycles of departure delay for the next message
    /// (the chaos layer's link-delay jitter; destructive-only).
    pub fn add_jitter(&mut self, extra: u64) {
        self.jitter_next_msg = self.jitter_next_msg.saturating_add(extra);
    }

    /// Pending link jitter not yet absorbed by a message.
    pub fn pending_jitter(&self) -> u64 {
        self.jitter_next_msg
    }

    /// Drops any pending jitter (when a fault plan is uninstalled, so the
    /// fault-free path stays bit-identical).
    pub fn clear_jitter(&mut self) {
        self.jitter_next_msg = 0;
    }

    /// Frees every link and drops pending jitter, returning the fabric to
    /// its just-constructed state.
    pub fn reset(&mut self) {
        for link in &mut self.links {
            *link = BusyHorizon::new();
        }
        self.jitter_next_msg = 0;
    }

    /// Sends one `class` message from stop `src` to stop `dst`, departing
    /// at `depart`; returns its arrival cycle. Reserves every link along
    /// the path (in traversal order) and attributes message, hop and
    /// queueing counters to `stats`.
    pub fn send(
        &mut self,
        src: usize,
        dst: usize,
        class: MsgClass,
        depart: u64,
        stats: &mut MemStats,
    ) -> u64 {
        debug_assert!(src < self.num_nodes() && dst < self.num_nodes() && src != dst);
        let ns = &mut stats.noc;
        ns.msgs[class.index()] += 1;
        let depart = depart + std::mem::take(&mut self.jitter_next_msg);
        match self.cfg.topology {
            Topology::Ideal => {
                ns.hops += 1;
                ns.link_msgs[0] += 1;
                depart
            }
            Topology::Crossbar => {
                // Contention at the destination's input port only.
                let start = self.links[dst].reserve(depart, self.cfg.link_occupancy);
                ns.hops += 1;
                ns.link_msgs[dst] += 1;
                ns.queue_cycles += start - depart;
                start + self.cfg.link_latency
            }
            Topology::Ring => {
                let n = self.num_nodes();
                let cw = (dst + n - src) % n; // clockwise hops
                let ccw = (src + n - dst) % n; // counterclockwise hops
                let forward = cw <= ccw;
                let hops = cw.min(ccw);
                let mut t = depart;
                let mut node = src;
                for _ in 0..hops {
                    // Link i carries i -> i+1 (clockwise); link n + i
                    // carries i -> i-1 (counterclockwise).
                    let link = if forward { node } else { n + node };
                    let start = self.links[link].reserve(t, self.cfg.link_occupancy);
                    ns.queue_cycles += start - t;
                    ns.hops += 1;
                    ns.link_msgs[link] += 1;
                    t = start + self.cfg.link_latency;
                    node = if forward {
                        (node + 1) % n
                    } else {
                        (node + n - 1) % n
                    };
                }
                t
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_for(noc: &Noc) -> MemStats {
        let mut s = MemStats::default();
        s.noc.link_msgs = vec![0; noc.num_links()];
        s
    }

    #[test]
    fn ideal_is_free_and_counted() {
        let mut noc = Noc::new(NocConfig::ideal(), 2, 2);
        let mut s = stats_for(&noc);
        assert_eq!(noc.num_links(), 1);
        assert_eq!(noc.send(0, 3, MsgClass::GetS, 100, &mut s), 100);
        assert_eq!(noc.send(3, 0, MsgClass::DataReply, 100, &mut s), 100);
        assert_eq!(s.noc.total_msgs(), 2);
        assert_eq!(s.noc.class(MsgClass::GetS), 1);
        assert_eq!(s.noc.queue_cycles, 0);
        assert_eq!(s.noc.link_msgs, vec![2]);
    }

    #[test]
    fn crossbar_queues_at_destination_port() {
        let mut noc = Noc::new(NocConfig::crossbar(), 2, 2);
        let mut s = stats_for(&noc);
        // Two messages to the same destination at the same cycle: the
        // second queues for one occupancy slot.
        assert_eq!(noc.send(0, 3, MsgClass::GetS, 10, &mut s), 11);
        assert_eq!(noc.send(1, 3, MsgClass::GetS, 10, &mut s), 12);
        // A message to a different destination does not queue.
        assert_eq!(noc.send(0, 2, MsgClass::GetS, 10, &mut s), 11);
        assert_eq!(s.noc.queue_cycles, 1);
        assert_eq!(s.noc.hops, 3);
    }

    #[test]
    fn ring_takes_shortest_direction_and_pays_per_hop() {
        // 6 stops: 0..3 cores, 3..6 banks.
        let mut noc = Noc::new(NocConfig::ring(), 3, 3);
        let mut s = stats_for(&noc);
        assert_eq!(noc.num_links(), 12);
        // 0 -> 2: two clockwise hops at latency 1.
        assert_eq!(noc.send(0, 2, MsgClass::GetS, 0, &mut s), 2);
        // 0 -> 5: one counterclockwise hop (shorter than 5 clockwise).
        assert_eq!(noc.send(0, 5, MsgClass::GetS, 0, &mut s), 1);
        assert_eq!(s.noc.hops, 3);
        // 0 -> 3: tie (3 either way) resolves clockwise deterministically.
        let t = noc.send(0, 3, MsgClass::GetS, 10, &mut s);
        assert_eq!(t, 13);
        assert_eq!(s.noc.link_msgs[0], 2); // link 0->1 used twice now
    }

    #[test]
    fn ring_links_serialize_messages() {
        let mut noc = Noc::new(NocConfig::ring(), 2, 2);
        let mut s = stats_for(&noc);
        // Same first link (0 -> 1) at the same cycle: second queues.
        assert_eq!(noc.send(0, 1, MsgClass::GetS, 5, &mut s), 6);
        assert_eq!(noc.send(0, 1, MsgClass::GetX, 5, &mut s), 7);
        assert_eq!(s.noc.queue_cycles, 1);
    }

    #[test]
    fn jitter_delays_exactly_one_message() {
        let mut noc = Noc::new(NocConfig::ring(), 2, 2);
        let mut s = stats_for(&noc);
        noc.add_jitter(7);
        assert_eq!(noc.pending_jitter(), 7);
        assert_eq!(noc.send(0, 1, MsgClass::GetS, 0, &mut s), 8);
        assert_eq!(noc.pending_jitter(), 0);
        assert_eq!(noc.send(0, 1, MsgClass::GetS, 20, &mut s), 21);
        noc.add_jitter(3);
        noc.clear_jitter();
        assert_eq!(noc.send(0, 1, MsgClass::GetS, 30, &mut s), 31);
    }

    #[test]
    fn config_validation() {
        assert_eq!(NocConfig::ideal().check(), Ok(()));
        assert_eq!(NocConfig::ring().check(), Ok(()));
        assert_eq!(NocConfig::crossbar().check(), Ok(()));
        // Ideal tolerates zero latency/occupancy (it is the definition).
        assert_eq!(NocConfig::default().check(), Ok(()));
        let c = NocConfig {
            link_latency: 0,
            ..NocConfig::ring()
        };
        assert_eq!(c.check(), Err(ConfigError::NocZeroLinkLatency));
        let c = NocConfig {
            link_occupancy: 0,
            ..NocConfig::crossbar()
        };
        assert_eq!(c.check(), Err(ConfigError::NocZeroLinkBandwidth));
        let c = NocConfig::ring().with_nodes(0);
        assert_eq!(c.check(), Err(ConfigError::NocZeroNodes));
        assert_eq!(NocConfig::ring().with_nodes(6).check(), Ok(()));
    }

    #[test]
    fn class_indices_are_a_bijection() {
        let mut seen = [false; MsgClass::COUNT];
        for c in MsgClass::ALL {
            assert!(!seen[c.index()], "duplicate index for {c:?}");
            seen[c.index()] = true;
            assert!(!c.label().is_empty());
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn stats_helpers() {
        let mut s = NocStats::default();
        assert_eq!(s.queue_cycles_per_msg(), 0.0);
        s.msgs[MsgClass::GetS.index()] = 3;
        s.msgs[MsgClass::DataReply.index()] = 1;
        s.queue_cycles = 8;
        assert_eq!(s.total_msgs(), 4);
        assert_eq!(s.class(MsgClass::GetS), 3);
        assert!((s.queue_cycles_per_msg() - 2.0).abs() < 1e-12);
    }
}

// ---- durable-snapshot serialization --------------------------------------

impl glsc_wire::Wire for Topology {
    fn encode(&self, w: &mut glsc_wire::Writer) {
        w.put_u8(match self {
            Topology::Ideal => 0,
            Topology::Crossbar => 1,
            Topology::Ring => 2,
        });
    }
    fn decode(r: &mut glsc_wire::Reader<'_>) -> Result<Self, glsc_wire::WireError> {
        let at = r.pos();
        match r.get_u8()? {
            0 => Ok(Topology::Ideal),
            1 => Ok(Topology::Crossbar),
            2 => Ok(Topology::Ring),
            _ => Err(glsc_wire::WireError::Invalid {
                at,
                what: "Topology tag",
            }),
        }
    }
}

glsc_wire::wire_struct!(NocConfig {
    topology,
    link_latency,
    link_occupancy,
    nodes,
});
glsc_wire::wire_struct!(NocStats {
    msgs,
    hops,
    queue_cycles,
    link_msgs,
});
glsc_wire::wire_struct!(Noc {
    cfg,
    cores,
    banks,
    links,
    jitter_next_msg,
});
