//! Shared, inclusive, banked L2 with in-line directory state.
//!
//! Per the paper (§2, §4.1): "all cores share an inclusive, physically
//! distributed second-level cache... The shared cache holds directory
//! information for each cache line to maintain coherence amongst the
//! private caches." Each bank serializes requests; contention is modeled
//! with a per-bank busy horizon.

use crate::occupancy::BusyHorizon;
use crate::tags::TagArray;

/// Per-line L2 payload: the MSI directory entry plus bookkeeping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct L2Payload {
    /// Bitmask of cores holding the line in Shared state.
    pub sharers: u32,
    /// Core holding the line Modified, if any.
    pub owner: Option<u8>,
    /// Whether the L2 copy is dirty with respect to memory.
    pub dirty: bool,
    /// Cycle the line's data arrived from DRAM (miss combining).
    pub ready_at: u64,
}

impl L2Payload {
    /// A freshly filled line with no private copies.
    pub fn clean(ready_at: u64) -> Self {
        Self {
            sharers: 0,
            owner: None,
            dirty: false,
            ready_at,
        }
    }

    /// Whether any L1 holds this line (sharer or owner).
    pub fn has_private_copies(&self) -> bool {
        self.sharers != 0 || self.owner.is_some()
    }

    /// Iterates over sharer core ids.
    pub fn sharer_cores(&self) -> impl Iterator<Item = usize> + '_ {
        (0..32).filter(|c| self.sharers & (1 << c) != 0)
    }
}

/// One bank of the shared L2: a tag array plus a busy horizon for
/// contention modeling (the same [`BusyHorizon`] discipline the NoC's
/// links use, so bank and link occupancy accounting cannot drift apart).
#[derive(Clone, Debug)]
pub struct L2Bank {
    /// Tag + directory array.
    pub tags: TagArray<L2Payload>,
    /// Busy horizon serializing requests to this bank.
    pub busy: BusyHorizon,
}

impl L2Bank {
    /// Creates a bank with the given geometry.
    pub fn new(sets: usize, assoc: usize, line_bytes: u64) -> Self {
        Self {
            tags: TagArray::new(sets, assoc, line_bytes),
            busy: BusyHorizon::new(),
        }
    }

    /// Reserves the bank for one request arriving at `arrival`; returns the
    /// cycle at which the bank starts serving it.
    pub fn reserve(&mut self, arrival: u64, occupancy: u64) -> u64 {
        self.busy.reserve(arrival, occupancy)
    }

    /// Returns the bank to its just-constructed state (no resident lines,
    /// horizon free from cycle 0), keeping allocations.
    pub fn reset(&mut self) {
        self.tags.clear();
        self.busy = BusyHorizon::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_helpers() {
        let mut p = L2Payload::clean(5);
        assert!(!p.has_private_copies());
        p.sharers = 0b101;
        assert!(p.has_private_copies());
        assert_eq!(p.sharer_cores().collect::<Vec<_>>(), vec![0, 2]);
        p.sharers = 0;
        p.owner = Some(3);
        assert!(p.has_private_copies());
    }

    #[test]
    fn bank_serializes_requests() {
        let mut b = L2Bank::new(4, 2, 64);
        assert_eq!(b.reserve(10, 2), 10);
        assert_eq!(b.reserve(10, 2), 12); // queued behind the first
        assert_eq!(b.reserve(30, 2), 30); // idle again
    }
}

glsc_wire::wire_struct!(L2Payload {
    sharers,
    owner,
    dirty,
    ready_at,
});
glsc_wire::wire_struct!(L2Bank { tags, busy });
