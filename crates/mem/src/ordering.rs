//! The memory-consistency-model axis of the machine configuration.
//!
//! The simulator was historically (implicitly) sequentially consistent:
//! the LSU commits stores to the global backing image at L1-port grant,
//! in FIFO program order, so every thread observes one total store order
//! consistent with each thread's program order. [`MemoryOrder`] makes
//! that a configurable axis. The enum lives in `glsc-mem` because the
//! drain rules it selects are enforced by the per-core LSU write buffers
//! (`glsc-core`) *against* this memory system, and both crates need the
//! type without a dependency cycle.
//!
//! The three models:
//!
//! * [`MemoryOrder::Sc`] — sequential consistency, the default. Stores
//!   travel through the shared LSU FIFO queue and commit at port grant.
//!   Byte-identical to the pre-configurable simulator.
//! * [`MemoryOrder::Tso`] — total store order. Plain scalar stores are
//!   held in the issuing thread's write buffer and drain FIFO after a
//!   fixed residency delay; loads bypass buffered stores (with exact
//!   word-address store-to-load forwarding from the thread's own
//!   buffer). This exhibits the classic SB (store-buffering) relaxed
//!   outcome while store-store order within a thread is preserved.
//! * [`MemoryOrder::RelaxedFence`] — relaxed ordering with explicit
//!   fences. Like TSO, but buffered stores become drain-eligible after a
//!   per-L2-bank skewed delay and drain youngest-eligible-first, so
//!   same-thread stores to different banks can commit out of program
//!   order (the MP message-passing relaxed outcome). `fence`,
//!   `fence.acq` and `fence.rel` restore ordering.
//!
//! Under every model, `sc`/`vscattercond`/`vstore`/`vscatter` flush the
//! issuing thread's write buffer ahead of themselves (atomics and vector
//! stores are ordering points, as on x86), and a thread's gather/scatter
//! instruction does not start until its write buffer has drained (§2.2
//! of the paper: the GSU waits for the LSU *and write buffer*).

use std::fmt;
use std::str::FromStr;

/// Which memory-consistency model the machine implements.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum MemoryOrder {
    /// Sequential consistency (the historical default timing).
    #[default]
    Sc,
    /// Total store order: per-thread FIFO write buffers with real drain
    /// timing; loads bypass and forward from buffered stores.
    Tso,
    /// Relaxed ordering with explicit fences: write buffers drain
    /// youngest-eligible-first with per-bank skewed eligibility, so
    /// store-store order is *not* preserved without a fence.
    RelaxedFence,
}

impl MemoryOrder {
    /// All models, for sweeps and exhaustive test matrices.
    pub const ALL: [MemoryOrder; 3] =
        [MemoryOrder::Sc, MemoryOrder::Tso, MemoryOrder::RelaxedFence];

    /// Whether plain stores are buffered (any non-SC model).
    #[inline]
    pub fn buffers_stores(self) -> bool {
        !matches!(self, MemoryOrder::Sc)
    }

    /// Stable lower-case name, used by the `--memory-order` flag and the
    /// job-id suffix (`-tso`, `-relaxed`; SC jobs keep their historical
    /// unsuffixed ids).
    pub fn name(self) -> &'static str {
        match self {
            MemoryOrder::Sc => "sc",
            MemoryOrder::Tso => "tso",
            MemoryOrder::RelaxedFence => "relaxed",
        }
    }
}

impl fmt::Display for MemoryOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error parsing a [`MemoryOrder`] from text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseMemoryOrderError {
    /// The text that did not name a model.
    pub found: String,
}

impl fmt::Display for ParseMemoryOrderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown memory order {:?} (expected sc, tso or relaxed)",
            self.found
        )
    }
}

impl std::error::Error for ParseMemoryOrderError {}

impl FromStr for MemoryOrder {
    type Err = ParseMemoryOrderError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sc" => Ok(MemoryOrder::Sc),
            "tso" => Ok(MemoryOrder::Tso),
            "relaxed" | "relaxed-fence" => Ok(MemoryOrder::RelaxedFence),
            _ => Err(ParseMemoryOrderError {
                found: s.to_string(),
            }),
        }
    }
}

impl glsc_wire::Wire for MemoryOrder {
    fn encode(&self, w: &mut glsc_wire::Writer) {
        w.put_u8(match self {
            MemoryOrder::Sc => 0,
            MemoryOrder::Tso => 1,
            MemoryOrder::RelaxedFence => 2,
        });
    }

    fn decode(r: &mut glsc_wire::Reader<'_>) -> Result<Self, glsc_wire::WireError> {
        let at = r.pos();
        Ok(match r.get_u8()? {
            0 => MemoryOrder::Sc,
            1 => MemoryOrder::Tso,
            2 => MemoryOrder::RelaxedFence,
            _ => {
                return Err(glsc_wire::WireError::Invalid {
                    at,
                    what: "MemoryOrder tag",
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glsc_wire::Wire;

    #[test]
    fn default_is_sc() {
        assert_eq!(MemoryOrder::default(), MemoryOrder::Sc);
        assert!(!MemoryOrder::Sc.buffers_stores());
        assert!(MemoryOrder::Tso.buffers_stores());
        assert!(MemoryOrder::RelaxedFence.buffers_stores());
    }

    #[test]
    fn names_round_trip() {
        for m in MemoryOrder::ALL {
            assert_eq!(m.name().parse::<MemoryOrder>(), Ok(m));
            assert_eq!(m.to_string().parse::<MemoryOrder>(), Ok(m));
        }
        assert!("weird".parse::<MemoryOrder>().is_err());
    }

    #[test]
    fn wire_round_trips_and_rejects_bad_tags() {
        for m in MemoryOrder::ALL {
            let mut w = glsc_wire::Writer::new();
            m.encode(&mut w);
            let bytes = w.into_bytes();
            let mut r = glsc_wire::Reader::new(&bytes);
            assert_eq!(MemoryOrder::decode(&mut r).unwrap(), m);
        }
        let mut r = glsc_wire::Reader::new(&[9]);
        assert!(MemoryOrder::decode(&mut r).is_err());
    }
}
