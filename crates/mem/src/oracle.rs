//! Vector-clock atomicity oracle for GLSC atomic regions.
//!
//! The paper's central correctness claim is that a
//! `vgatherlink … vscattercond` region behaves as an atomic
//! read-modify-write per element: no foreign write may land on a word
//! between the link that read it and a store-conditional that *succeeds*
//! on it. The simulator enforces this through per-line reservations, but
//! that enforcement has only ever been *assumed* correct. This oracle
//! checks it dynamically, in the style of the coyote-scheduler
//! vector-clock race detector: every hardware thread (`gid`) carries a
//! vector clock, every word carries the clock of its last write plus the
//! writer's identity, and every link snapshots the linked word's clock.
//! When a store-conditional lane **succeeds**, the oracle compares the
//! word's current clock against the link-time snapshot: if the clock
//! moved and the last writer was a different thread, a foreign write was
//! observed inside the atomic region — an atomicity violation, which the
//! machine surfaces as a typed `SimError`.
//!
//! The oracle is observational: installing it never changes timing or
//! values, so a run with the oracle attached is cycle-identical to one
//! without (mirroring the [`crate::FaultPlan`] chaos hook). It is also
//! falsifiable: [`AtomicityOracle::inject_foreign_write_after_links`]
//! fabricates a phantom foreign write after the N-th link so tests can
//! prove the detector actually fires and that the failing schedule
//! replays deterministically.

use std::collections::BTreeMap;
use std::fmt;

use glsc_wire::{Reader, Wire, WireError, Writer};

/// Counters describing what the oracle observed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Word-granular store commits observed (scalar, scatter, sc lanes).
    pub stores: u64,
    /// Link snapshots taken (scalar `ll` and `vgatherlink` lanes).
    pub links: u64,
    /// Successful store-conditional lanes checked against a snapshot.
    pub sc_checks: u64,
    /// Violations detected (including injected ones).
    pub violations: u64,
    /// Phantom foreign writes fabricated by the injection knob.
    pub injected: u64,
}

glsc_wire::wire_struct!(OracleStats {
    stores,
    links,
    sc_checks,
    violations,
    injected,
});

/// One detected atomicity violation: thread `gid` successfully
/// store-conditional'd word `addr` even though a foreign write by
/// `writer` landed on it after the link.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AtomicityViolation {
    /// Global hardware-thread id whose atomic region was broken.
    pub gid: usize,
    /// Word address that was foreign-written inside the region.
    pub addr: u64,
    /// Global hardware-thread id of the foreign writer, if one was
    /// recorded (`None` means the word's clock moved without a tracked
    /// writer, which only the injection knob can produce).
    pub writer: Option<usize>,
    /// `true` when the foreign write was fabricated by the injection
    /// knob rather than observed from real traffic.
    pub injected: bool,
}

impl fmt::Display for AtomicityViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "atomic region of thread {} broken at word {:#x}: foreign write by {}{}",
            self.gid,
            self.addr,
            match self.writer {
                Some(w) => w.to_string(),
                None => "<untracked>".to_string(),
            },
            if self.injected { " (injected)" } else { "" }
        )
    }
}

impl std::error::Error for AtomicityViolation {}

glsc_wire::wire_struct!(AtomicityViolation {
    gid,
    addr,
    writer,
    injected,
});

/// Per-word write state: the vector clock of the last write and the
/// identity of the writer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct WordState {
    clock: Vec<u64>,
    last_writer: Option<usize>,
}

glsc_wire::wire_struct!(WordState { clock, last_writer });

/// Dynamic vector-clock checker for GLSC atomic-region atomicity.
///
/// Installed on a `MemorySystem` via `install_oracle`; the LSU and GSU
/// report word-granular events through the `oracle_note_*` hooks. Purely
/// observational — never perturbs timing, values or coherence state.
#[derive(Clone, Debug, PartialEq)]
pub struct AtomicityOracle {
    /// Number of global hardware threads (vector-clock width).
    num_gids: usize,
    /// Per-gid vector clock; `vc[g][g]` advances on every event by `g`.
    vc: Vec<Vec<u64>>,
    /// Per-word last-write state.
    words: BTreeMap<u64, WordState>,
    /// Outstanding link snapshots: `(gid, word) -> clock at link time`.
    /// Consumed by the matching successful store-conditional lane.
    links: BTreeMap<(usize, u64), Vec<u64>>,
    /// Event counters.
    stats: OracleStats,
    /// After this many total links, fabricate one phantom foreign write
    /// on the word just linked (testing/falsifiability knob).
    inject_after_links: Option<u64>,
    /// Violations detected so far, in observation order.
    violations: Vec<AtomicityViolation>,
}

impl AtomicityOracle {
    /// Creates an oracle for a machine with `num_gids` hardware threads.
    pub fn new(num_gids: usize) -> Self {
        AtomicityOracle {
            num_gids,
            vc: vec![vec![0; num_gids]; num_gids],
            words: BTreeMap::new(),
            links: BTreeMap::new(),
            stats: OracleStats::default(),
            inject_after_links: None,
            violations: Vec::new(),
        }
    }

    /// Arms the falsifiability knob: after the `n`-th link event the
    /// oracle fabricates a phantom foreign write to the linked word, so
    /// the next successful store-conditional on it must be flagged.
    #[must_use]
    pub fn inject_foreign_write_after_links(mut self, n: u64) -> Self {
        self.inject_after_links = Some(n);
        self
    }

    /// Counters observed so far.
    pub fn stats(&self) -> OracleStats {
        self.stats
    }

    /// Violations detected so far, in observation order.
    pub fn violations(&self) -> &[AtomicityViolation] {
        &self.violations
    }

    fn bump(&mut self, gid: usize) {
        debug_assert!(gid < self.num_gids, "gid {gid} out of range");
        if let Some(row) = self.vc.get_mut(gid) {
            row[gid] += 1;
        }
    }

    /// Joins `clock` into the word's clock (elementwise max) and records
    /// the writer.
    fn commit_write(&mut self, gid: usize, addr: u64) {
        let clock = self.vc[gid].clone();
        let st = self.words.entry(addr).or_default();
        if st.clock.len() < clock.len() {
            st.clock.resize(clock.len(), 0);
        }
        for (dst, src) in st.clock.iter_mut().zip(clock.iter()) {
            *dst = (*dst).max(*src);
        }
        st.last_writer = Some(gid);
    }

    /// A plain (non-conditional) store by `gid` committed to word `addr`.
    pub fn note_store(&mut self, gid: usize, addr: u64) {
        self.stats.stores += 1;
        self.bump(gid);
        self.commit_write(gid, addr);
    }

    /// Thread `gid` linked word `addr` (scalar `ll` or a `vgatherlink`
    /// lane): snapshot the word's current clock.
    pub fn note_link(&mut self, gid: usize, addr: u64) {
        self.stats.links += 1;
        self.bump(gid);
        let snap = self
            .words
            .get(&addr)
            .map(|w| w.clock.clone())
            .unwrap_or_default();
        self.links.insert((gid, addr), snap);
        if let Some(n) = self.inject_after_links {
            if self.stats.links >= n {
                self.inject_after_links = None;
                self.stats.injected += 1;
                let st = self.words.entry(addr).or_default();
                if st.clock.is_empty() {
                    st.clock = vec![0; self.num_gids.max(1)];
                }
                // A phantom writer that is provably not `gid`.
                let phantom = (gid + 1) % self.num_gids.max(1);
                if let Some(c) = st.clock.get_mut(phantom) {
                    *c += 1;
                }
                st.last_writer = if phantom == gid { None } else { Some(phantom) };
            }
        }
    }

    /// A store-conditional lane by `gid` **succeeded** on word `addr`.
    /// Checks the link snapshot, then commits the write. Returns the
    /// violation if the region was broken.
    pub fn note_sc_success(&mut self, gid: usize, addr: u64) -> Option<AtomicityViolation> {
        self.bump(gid);
        let mut found = None;
        if let Some(snap) = self.links.remove(&(gid, addr)) {
            self.stats.sc_checks += 1;
            if let Some(st) = self.words.get(&addr) {
                let moved = !clocks_equal(&st.clock, &snap);
                let foreign = st.last_writer != Some(gid);
                if moved && foreign {
                    let v = AtomicityViolation {
                        gid,
                        addr,
                        writer: st.last_writer,
                        injected: self.stats.injected > 0,
                    };
                    self.stats.violations += 1;
                    self.violations.push(v.clone());
                    found = Some(v);
                }
            }
        }
        self.stats.stores += 1;
        self.commit_write(gid, addr);
        found
    }
}

/// Clock comparison treating missing trailing components as zero.
fn clocks_equal(a: &[u64], b: &[u64]) -> bool {
    let n = a.len().max(b.len());
    (0..n).all(|i| a.get(i).copied().unwrap_or(0) == b.get(i).copied().unwrap_or(0))
}

impl Wire for AtomicityOracle {
    fn encode(&self, w: &mut Writer) {
        self.num_gids.encode(w);
        self.vc.encode(w);
        let words: Vec<(u64, WordState)> =
            self.words.iter().map(|(k, v)| (*k, v.clone())).collect();
        words.encode(w);
        let links: Vec<((usize, u64), Vec<u64>)> =
            self.links.iter().map(|(k, v)| (*k, v.clone())).collect();
        links.encode(w);
        self.stats.encode(w);
        self.inject_after_links.encode(w);
        self.violations.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let num_gids = usize::decode(r)?;
        let vc = Vec::<Vec<u64>>::decode(r)?;
        let words = Vec::<(u64, WordState)>::decode(r)?
            .into_iter()
            .collect::<BTreeMap<_, _>>();
        let links = Vec::<((usize, u64), Vec<u64>)>::decode(r)?
            .into_iter()
            .collect::<BTreeMap<_, _>>();
        let stats = OracleStats::decode(r)?;
        let inject_after_links = Option::<u64>::decode(r)?;
        let violations = Vec::<AtomicityViolation>::decode(r)?;
        Ok(AtomicityOracle {
            num_gids,
            vc,
            words,
            links,
            stats,
            inject_after_links,
            violations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_link_sc_pair_is_not_flagged() {
        let mut o = AtomicityOracle::new(4);
        o.note_link(0, 0x100);
        assert!(o.note_sc_success(0, 0x100).is_none());
        assert_eq!(o.stats().sc_checks, 1);
        assert!(o.violations().is_empty());
    }

    #[test]
    fn own_write_inside_region_is_not_flagged() {
        let mut o = AtomicityOracle::new(4);
        o.note_link(0, 0x100);
        o.note_store(0, 0x100);
        assert!(o.note_sc_success(0, 0x100).is_none());
    }

    #[test]
    fn foreign_write_inside_region_is_flagged() {
        let mut o = AtomicityOracle::new(4);
        o.note_link(0, 0x100);
        o.note_store(1, 0x100);
        let v = o.note_sc_success(0, 0x100).expect("must flag");
        assert_eq!(v.gid, 0);
        assert_eq!(v.addr, 0x100);
        assert_eq!(v.writer, Some(1));
        assert!(!v.injected);
        assert_eq!(o.stats().violations, 1);
    }

    #[test]
    fn foreign_write_before_link_is_not_flagged() {
        let mut o = AtomicityOracle::new(4);
        o.note_store(1, 0x100);
        o.note_link(0, 0x100);
        assert!(o.note_sc_success(0, 0x100).is_none());
    }

    #[test]
    fn relinking_refreshes_the_snapshot() {
        let mut o = AtomicityOracle::new(4);
        o.note_link(0, 0x100);
        o.note_store(1, 0x100);
        // The retry loop links again before the next sc attempt.
        o.note_link(0, 0x100);
        assert!(o.note_sc_success(0, 0x100).is_none());
    }

    #[test]
    fn injection_knob_forces_a_violation() {
        let mut o = AtomicityOracle::new(2).inject_foreign_write_after_links(2);
        o.note_link(0, 0x40);
        assert!(o.note_sc_success(0, 0x40).is_none());
        o.note_link(0, 0x80);
        let v = o
            .note_sc_success(0, 0x80)
            .expect("injected write must trip");
        assert!(v.injected);
        assert_eq!(o.stats().injected, 1);
        // Knob disarms after one injection.
        o.note_link(0, 0xc0);
        assert!(o.note_sc_success(0, 0xc0).is_none());
    }

    #[test]
    fn wire_round_trips_mid_region() {
        let mut o = AtomicityOracle::new(3).inject_foreign_write_after_links(9);
        o.note_link(1, 0x200);
        o.note_store(2, 0x200);
        o.note_store(2, 0x240);
        let mut w = Writer::new();
        o.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let mut back = AtomicityOracle::decode(&mut r).unwrap();
        assert_eq!(back, o);
        // The restored oracle must reach the same verdict.
        let v = back.note_sc_success(1, 0x200).expect("must flag");
        assert_eq!(v.writer, Some(2));
    }
}
