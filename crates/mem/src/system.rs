//! The coherence + timing engine tying L1s, the banked L2 directory, DRAM
//! and the prefetcher together.
//!
//! One call to [`MemorySystem::access`] models one line-granular request
//! accepted at an L1 port: it probes the L1, walks the MSI directory
//! protocol on a miss or upgrade, mutates all coherence and reservation
//! state, and returns the cycle at which the request's data is available.
//!
//! Every L1↔L2 transaction is decomposed into typed messages over the
//! on-die interconnect ([`Noc`]): the request travels core→bank, the
//! directory's invalidations/downgrade probes travel bank→sharer with an
//! acknowledgement back, dirty evictions send a writeback, and the data
//! reply travels bank→core. Under the default
//! [`Topology::Ideal`](crate::Topology) fabric every traversal is free and
//! the timing is bit-identical to the pre-NoC simulator; ring and crossbar
//! fabrics add per-hop latency and link queueing.

use crate::arbitration::{Arbiter, ArbitrationPolicy};
use crate::backing::Backing;
use crate::chaos::{ChaosStats, FaultPlan};
use crate::config::MemConfig;
use crate::errors::{ConfigError, InvariantViolation};
use crate::l1::{L1Cache, L1State, LinePayload};
use crate::l2::{L2Bank, L2Payload};
use crate::line_of;
use crate::noc::{MsgClass, Noc};
use crate::oracle::{AtomicityOracle, AtomicityViolation};
use crate::prefetch::StridePrefetcher;
use crate::stats::{MemStats, ThreadScStats};
use glsc_rng::Rng;

/// The kind of request presented at an L1 port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemOp {
    /// Plain load.
    Load,
    /// Plain store (commits data; clears the line's GLSC reservation).
    Store,
    /// Load-linked: load plus reservation acquisition for the issuing SMT
    /// thread (used by scalar `ll` and by `vgatherlink`, §3.3).
    LoadLinked,
    /// Store-conditional: store iff the issuing thread still holds the
    /// line's reservation (used by scalar `sc` and by `vscattercond`).
    StoreCond,
}

/// Outcome of an accepted request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// Cycle at which the request completes (data available / store
    /// globally performed).
    pub done: u64,
    /// Whether the request hit in the L1.
    pub l1_hit: bool,
    /// For [`MemOp::StoreCond`]: whether the reservation check passed and
    /// the store was performed. `true` for all other ops.
    pub sc_ok: bool,
}

/// The full simulated memory system shared by all cores.
#[derive(Clone, Debug)]
pub struct MemorySystem {
    cfg: MemConfig,
    backing: Backing,
    l1s: Vec<L1Cache>,
    banks: Vec<L2Bank>,
    prefetchers: Vec<StridePrefetcher>,
    noc: Noc,
    stats: MemStats,
    /// SMT threads per core — fixes the `core * tpc + tid` global-thread
    /// indexing of the per-thread SC telemetry and the arbiter.
    threads_per_core: usize,
    /// Runtime state of the configured arbitration policy (empty and
    /// untouched under [`ArbitrationPolicy::Free`]). Plain owned data, so
    /// snapshots cover it like everything else.
    arbiter: Arbiter,
    /// Installed fault-injection plan (DESIGN.md §9); `None` on the
    /// fault-free hot path.
    chaos: Option<Box<FaultPlan>>,
    /// Extra DRAM cycles the next L2-miss fill must absorb (scheduled by
    /// the jitter injector; always 0 without a fault plan).
    jitter_next_fill: u64,
    /// Installed vector-clock atomicity oracle (DESIGN.md §17); `None` on
    /// the unchecked hot path. Purely observational: never affects timing.
    oracle: Option<Box<AtomicityOracle>>,
}

impl MemorySystem {
    /// Builds a memory system for `num_cores` cores with `threads_per_core`
    /// SMT threads each (the prefetcher tracks one stream per thread).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`MemConfig::validate`]) or `num_cores` is 0 or exceeds 32. Use
    /// [`MemorySystem::try_new`] for a non-panicking alternative.
    pub fn new(cfg: MemConfig, num_cores: usize, threads_per_core: usize) -> Self {
        match Self::try_new(cfg, num_cores, threads_per_core) {
            Ok(sys) => sys,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds a memory system, rejecting inconsistent shapes as a typed
    /// [`ConfigError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Everything [`MemConfig::check`] rejects, plus
    /// [`ConfigError::CoresOutOfRange`] (the directory sharer vector is a
    /// `u32` bitmask), [`ConfigError::ThreadsPerCoreOutOfRange`] (the
    /// reservation masks are 8-bit), and
    /// [`ConfigError::NocNodeCountMismatch`] when the NoC declares a stop
    /// count that disagrees with `num_cores + l2_banks`.
    pub fn try_new(
        cfg: MemConfig,
        num_cores: usize,
        threads_per_core: usize,
    ) -> Result<Self, ConfigError> {
        cfg.check()?;
        if num_cores == 0 || num_cores > 32 {
            return Err(ConfigError::CoresOutOfRange { cores: num_cores });
        }
        if threads_per_core == 0 || threads_per_core > 8 {
            return Err(ConfigError::ThreadsPerCoreOutOfRange { threads_per_core });
        }
        if let Some(declared) = cfg.noc.nodes {
            if declared != num_cores + cfg.l2_banks {
                return Err(ConfigError::NocNodeCountMismatch {
                    declared,
                    cores: num_cores,
                    banks: cfg.l2_banks,
                });
            }
        }
        let l1s: Vec<L1Cache> = (0..num_cores)
            .map(|_| match cfg.glsc_buffer_entries {
                None => L1Cache::new(cfg.l1_sets(), cfg.l1_assoc, cfg.line_bytes),
                Some(k) => {
                    L1Cache::with_reservation_buffer(cfg.l1_sets(), cfg.l1_assoc, cfg.line_bytes, k)
                }
            })
            .collect();
        let banks = (0..cfg.l2_banks)
            .map(|_| L2Bank::new(cfg.l2_sets_per_bank(), cfg.l2_assoc, cfg.line_bytes))
            .collect();
        let prefetchers = (0..num_cores)
            .map(|_| StridePrefetcher::new(threads_per_core, cfg.prefetch_degree, cfg.line_bytes))
            .collect();
        let noc = Noc::new(cfg.noc.clone(), num_cores, cfg.l2_banks);
        let mut stats = MemStats::default();
        stats.noc.link_msgs = vec![0; noc.num_links()];
        stats.sc_threads = vec![ThreadScStats::default(); num_cores * threads_per_core];
        Ok(Self {
            cfg,
            backing: Backing::new(),
            l1s,
            banks,
            prefetchers,
            noc,
            stats,
            threads_per_core,
            arbiter: Arbiter::default(),
            chaos: None,
            jitter_next_fill: 0,
            oracle: None,
        })
    }

    /// Installs a seeded fault-injection plan; subsequent accesses are
    /// subject to its schedule. Replaces any existing plan.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.chaos = Some(Box::new(plan));
    }

    /// Removes and returns the installed fault plan, restoring the
    /// zero-overhead fault-free path.
    pub fn take_fault_plan(&mut self) -> Option<FaultPlan> {
        self.jitter_next_fill = 0;
        self.noc.clear_jitter();
        self.chaos.take().map(|b| *b)
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.chaos.as_deref()
    }

    /// Injection counters of the installed fault plan, if any.
    pub fn chaos_stats(&self) -> Option<&ChaosStats> {
        self.chaos.as_ref().map(|p| p.stats())
    }

    /// Installs a vector-clock atomicity oracle; subsequent link/store/
    /// store-conditional commits are checked against it. Replaces any
    /// existing oracle. Observational only — timing is unchanged.
    pub fn install_oracle(&mut self, oracle: AtomicityOracle) {
        self.oracle = Some(Box::new(oracle));
    }

    /// Removes and returns the installed oracle, restoring the
    /// zero-overhead unchecked path.
    pub fn take_oracle(&mut self) -> Option<AtomicityOracle> {
        self.oracle.take().map(|b| *b)
    }

    /// The installed atomicity oracle, if any.
    pub fn oracle(&self) -> Option<&AtomicityOracle> {
        self.oracle.as_deref()
    }

    /// Reports a committed plain store (scalar store, vector-store lane or
    /// scatter lane) to the installed oracle, if any.
    #[inline]
    pub fn oracle_note_store(&mut self, core: usize, tid: u8, addr: u64) {
        if self.oracle.is_some() {
            self.oracle_store_cold(core, tid, addr);
        }
    }

    #[cold]
    fn oracle_store_cold(&mut self, core: usize, tid: u8, addr: u64) {
        let gid = self.gid(core, tid);
        if let Some(o) = self.oracle.as_deref_mut() {
            o.note_store(gid, addr);
        }
    }

    /// Reports a link acquisition (scalar `ll` or a `vgatherlink` lane) to
    /// the installed oracle, if any.
    #[inline]
    pub fn oracle_note_link(&mut self, core: usize, tid: u8, addr: u64) {
        if self.oracle.is_some() {
            self.oracle_link_cold(core, tid, addr);
        }
    }

    #[cold]
    fn oracle_link_cold(&mut self, core: usize, tid: u8, addr: u64) {
        let gid = self.gid(core, tid);
        if let Some(o) = self.oracle.as_deref_mut() {
            o.note_link(gid, addr);
        }
    }

    /// Reports a **successful** store-conditional commit (scalar `sc` or a
    /// `vscattercond` lane) to the installed oracle, if any.
    #[inline]
    pub fn oracle_note_sc_success(&mut self, core: usize, tid: u8, addr: u64) {
        if self.oracle.is_some() {
            self.oracle_sc_cold(core, tid, addr);
        }
    }

    #[cold]
    fn oracle_sc_cold(&mut self, core: usize, tid: u8, addr: u64) {
        let gid = self.gid(core, tid);
        if let Some(o) = self.oracle.as_deref_mut() {
            o.note_sc_success(gid, addr);
        }
    }

    /// The first atomicity violation detected by the installed oracle, if
    /// any. The run loop polls this to surface a typed error.
    pub fn oracle_violation(&self) -> Option<&AtomicityViolation> {
        self.oracle.as_deref().and_then(|o| o.violations().first())
    }

    /// The configuration in effect.
    pub fn cfg(&self) -> &MemConfig {
        &self.cfg
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.l1s.len()
    }

    /// Accumulated event counters.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Resets the event counters (e.g. after warmup). Arbitration policy
    /// state is *not* statistics and survives: resetting counters must
    /// never change timing.
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
        self.stats.noc.link_msgs = vec![0; self.noc.num_links()];
        self.stats.sc_threads =
            vec![ThreadScStats::default(); self.l1s.len() * self.threads_per_core];
    }

    /// Returns the whole system to its just-constructed state — cold
    /// caches, free fabric, zeroed counters, empty backing (any CoW base
    /// layer is unmounted), no fault plan — while keeping the large tag
    /// and page-table allocations for reuse. The fleet engine (DESIGN.md
    /// §13) calls this between jobs so pooled machines behave bit-
    /// identically to freshly constructed ones.
    pub fn reset(&mut self) {
        self.backing.reset_to(None);
        for l1 in &mut self.l1s {
            l1.reset();
        }
        for bank in &mut self.banks {
            bank.reset();
        }
        for pf in &mut self.prefetchers {
            pf.reset();
        }
        self.noc.reset();
        self.arbiter = Arbiter::default();
        self.chaos = None;
        self.jitter_next_fill = 0;
        self.oracle = None;
        self.reset_stats();
    }

    /// Runtime state of the configured arbitration policy (inspection for
    /// tests and diagnostics).
    pub fn arbiter(&self) -> &Arbiter {
        &self.arbiter
    }

    /// The on-die interconnect (inspection for tests and statistics).
    pub fn noc(&self) -> &Noc {
        &self.noc
    }

    /// Read access to the functional memory image.
    pub fn backing(&self) -> &Backing {
        &self.backing
    }

    /// Write access to the functional memory image.
    pub fn backing_mut(&mut self) -> &mut Backing {
        &mut self.backing
    }

    /// The L1 of `core` (inspection for tests and statistics).
    pub fn l1(&self, core: usize) -> &L1Cache {
        &self.l1s[core]
    }

    /// Whether SMT thread `tid` of `core` holds the reservation on the line
    /// containing `addr`.
    pub fn holds_reservation(&self, core: usize, tid: u8, addr: u64) -> bool {
        self.l1s[core].holds_reservation(line_of(addr, self.cfg.line_bytes), tid)
    }

    /// Presents one request at `core`'s L1 port at cycle `now`.
    ///
    /// `tid` is the core-local SMT thread id of the requester, used for
    /// reservations and prefetch stream tracking. Timing is line-granular:
    /// callers split multi-line vector operations into one access per
    /// distinct line (the GSU does exactly this, combining same-line
    /// elements, §4.1).
    pub fn access(&mut self, core: usize, tid: u8, op: MemOp, addr: u64, now: u64) -> AccessResult {
        let line = line_of(addr, self.cfg.line_bytes);
        if self.chaos.is_some() {
            self.inject_faults(now);
        }
        let result = self.access_line(core, tid, op, line, now, true);
        if self.cfg.prefetch && !matches!(op, MemOp::StoreCond) {
            for pf_line in self.prefetchers[core].observe(tid as usize, line) {
                self.prefetch_line(core, pf_line, now);
            }
        }
        result
    }

    /// Runs the installed fault plan for one accepted access: every
    /// `period`-th access is an injection point at which each fault kind is
    /// rolled independently. Off the hot path — callers gate on
    /// `self.chaos.is_some()`.
    ///
    /// All faults are destructive-only (clear, evict, delay); see the
    /// `chaos` module docs for why injecting spurious reservation *gain*
    /// is forbidden.
    #[cold]
    fn inject_faults(&mut self, now: u64) {
        let Some(mut plan) = self.chaos.take() else {
            return;
        };
        plan.accesses += 1;
        if plan.accesses % plan.cfg.period == 0 {
            self.injection_point(&mut plan, now);
        }
        self.chaos = Some(plan);
    }

    /// One injection point of `plan` (taken out of `self` so the injectors
    /// can borrow the caches mutably).
    fn injection_point(&mut self, plan: &mut FaultPlan, now: u64) {
        plan.stats.injection_points += 1;
        let cores = self.l1s.len();

        // (a) §3.2 conflicting write: kill every link on one reserved line.
        if plan.rng.random_bool(plan.cfg.clear_line_prob) {
            let c = plan.rng.random_range(0..cores);
            let reserved = self.l1s[c].reservation_entries();
            if !reserved.is_empty() {
                let (line, _) = reserved[plan.rng.random_range(0..reserved.len())];
                if self.l1s[c].clear_reservation(line) {
                    plan.stats.reservations_cleared += 1;
                }
            }
        }

        // (a') §3.2 context switch: flush one core's reservation state.
        if plan.rng.random_bool(plan.cfg.flush_core_prob) {
            let c = plan.rng.random_range(0..cores);
            if self.l1s[c].clear_all_reservations() > 0 {
                plan.stats.core_flushes += 1;
            }
        }

        // (b) §3.2 capacity/prefetch displacement: evict a random resident
        // line with full directory bookkeeping (the same path a natural
        // eviction takes, so coherence invariants keep holding).
        if plan.rng.random_bool(plan.cfg.evict_line_prob) {
            let c = plan.rng.random_range(0..cores);
            let resident: Vec<u64> = self.l1s[c].iter().map(|(line, _)| line).collect();
            if !resident.is_empty() {
                let line = resident[plan.rng.random_range(0..resident.len())];
                if let Some(vpay) = self.l1s[c].invalidate(line) {
                    self.evict_from_l1(c, line, vpay, now);
                    plan.stats.lines_evicted += 1;
                }
            }
        }

        // (c) DRAM timing jitter: the next L2-miss fill is late.
        if plan.cfg.dram_jitter_max > 0 && plan.rng.random_bool(plan.cfg.dram_jitter_prob) {
            let extra = plan.rng.random_range(1..=plan.cfg.dram_jitter_max);
            self.jitter_next_fill = self.jitter_next_fill.saturating_add(extra);
            plan.stats.jitter_events += 1;
            plan.stats.jitter_cycles += extra;
        }

        // (d) §3.3 buffer overflow pressure: force the oldest buffered
        // reservation out (no-op in per-line-tag mode).
        if plan.rng.random_bool(plan.cfg.buffer_pressure_prob) {
            let c = plan.rng.random_range(0..cores);
            if self.l1s[c].force_buffer_eviction() {
                plan.stats.forced_buffer_evictions += 1;
                self.stats.reservation_buffer_evictions += 1;
            }
        }

        // (e) fabric arbitration jitter: the next interconnect message
        // departs late (delay-only; never reorders or drops).
        if plan.cfg.link_jitter_max > 0 && plan.rng.random_bool(plan.cfg.link_jitter_prob) {
            let extra = plan.rng.random_range(1..=plan.cfg.link_jitter_max);
            self.noc.add_jitter(extra);
            plan.stats.link_jitter_events += 1;
            plan.stats.link_jitter_cycles += extra;
        }
    }

    fn prefetch_line(&mut self, core: usize, line: u64, now: u64) {
        if self.l1s[core].peek(line).is_some() {
            self.stats.prefetches_redundant += 1;
            return;
        }
        self.stats.prefetches_issued += 1;
        let _ = self.fill(core, line, now, false, false, MsgClass::PrefetchFill);
    }

    fn access_line(
        &mut self,
        core: usize,
        tid: u8,
        op: MemOp,
        line: u64,
        now: u64,
        demand: bool,
    ) -> AccessResult {
        debug_assert!(demand, "demand-only entry point");
        let hit_latency = self.cfg.l1_hit_latency;
        match op {
            MemOp::Load | MemOp::LoadLinked => {
                if let Some(p) = self.l1s[core].lookup_mut(line) {
                    let done = (now + hit_latency).max(p.ready_at);
                    if p.ready_at > now + hit_latency {
                        self.stats.hits_under_miss += 1;
                    }
                    self.stats.l1_hits += 1;
                    if op == MemOp::LoadLinked
                        && self.may_reserve(core, tid, line, now)
                        && self.l1s[core].set_reservation(line, tid)
                    {
                        self.stats.reservation_buffer_evictions += 1;
                    }
                    AccessResult {
                        done,
                        l1_hit: true,
                        sc_ok: true,
                    }
                } else {
                    self.stats.l1_misses += 1;
                    let class = if op == MemOp::LoadLinked {
                        MsgClass::GlscProbe
                    } else {
                        MsgClass::GetS
                    };
                    let done = self.fill(core, line, now, false, true, class);
                    if op == MemOp::LoadLinked
                        && self.may_reserve(core, tid, line, now)
                        && self.l1s[core].set_reservation(line, tid)
                    {
                        self.stats.reservation_buffer_evictions += 1;
                    }
                    AccessResult {
                        done,
                        l1_hit: false,
                        sc_ok: true,
                    }
                }
            }
            MemOp::Store => {
                if self.l1s[core].peek(line).is_some() {
                    self.stats.l1_hits += 1;
                    if self.l1s[core].clear_reservation(line) {
                        self.stats.reservations_cleared_by_stores += 1;
                    }
                    let p = self.l1s[core].lookup_mut(line).expect("resident");
                    let state = p.state;
                    let ready = p.ready_at;
                    let done = if state == L1State::Modified {
                        (now + hit_latency).max(ready)
                    } else {
                        let lat = self.upgrade(core, line, now, MsgClass::GetX);
                        self.l1s[core]
                            .peek_mut(line)
                            .expect("line resident during upgrade")
                            .state = L1State::Modified;
                        lat.max(ready)
                    };
                    AccessResult {
                        done,
                        l1_hit: true,
                        sc_ok: true,
                    }
                } else {
                    self.stats.l1_misses += 1;
                    let done = self.fill(core, line, now, true, true, MsgClass::GetX);
                    AccessResult {
                        done,
                        l1_hit: false,
                        sc_ok: true,
                    }
                }
            }
            MemOp::StoreCond => {
                // The reservation lives in the L1 entry, so a non-resident
                // line cannot hold one: fail fast (conservative ll/sc
                // semantics, §3).
                let holds = self.l1s[core].peek(line).is_some()
                    && self.l1s[core].holds_reservation(line, tid);
                if !holds {
                    self.stats.l1_hits += 1;
                    self.stats.sc_failures += 1;
                    self.note_sc_failure(core, tid, line, now, true);
                    return AccessResult {
                        done: now + hit_latency,
                        l1_hit: true,
                        sc_ok: false,
                    };
                }
                // An otherwise-committable SC can still be refused by the
                // arbitration policy (AgedPriority: an older failure
                // streak is active on the line). A refusal is a NACK at
                // the L1 port — it costs one hit latency and leaves every
                // reservation, including the requester's, intact.
                if self.sc_refused(core, tid, line, now) {
                    self.stats.l1_hits += 1;
                    self.stats.sc_failures += 1;
                    self.note_sc_failure(core, tid, line, now, false);
                    return AccessResult {
                        done: now + hit_latency,
                        l1_hit: true,
                        sc_ok: false,
                    };
                }
                // The conditional store commits: every link on the line dies
                // (including other threads' — it is an intervening write
                // from their perspective).
                self.l1s[core].clear_reservation(line);
                let p = self.l1s[core].lookup_mut(line).expect("resident");
                let state = p.state;
                let ready = p.ready_at;
                self.stats.l1_hits += 1;
                self.stats.sc_successes += 1;
                self.note_sc_success(core, tid, line);
                let done = if state == L1State::Modified {
                    (now + hit_latency).max(ready)
                } else {
                    let lat = self.upgrade(core, line, now, MsgClass::GlscProbe);
                    self.l1s[core]
                        .peek_mut(line)
                        .expect("line resident during upgrade")
                        .state = L1State::Modified;
                    lat.max(ready)
                };
                AccessResult {
                    done,
                    l1_hit: true,
                    sc_ok: true,
                }
            }
        }
    }

    /// Global hardware-thread id of `(core, tid)`, indexing the per-thread
    /// SC telemetry and the arbiter's age book.
    fn gid(&self, core: usize, tid: u8) -> usize {
        core * self.threads_per_core + tid as usize
    }

    /// Whether the active policy lets `(core, tid)` acquire a reservation
    /// on `line` at `now`. Only NackHoldoff ever says no (a load-linked
    /// during the loser's holdoff window returns data but links nothing).
    fn may_reserve(&mut self, core: usize, tid: u8, line: u64, now: u64) -> bool {
        match self.cfg.arbitration {
            ArbitrationPolicy::NackHoldoff { .. } => !self.arbiter.in_holdoff(core, tid, line, now),
            ArbitrationPolicy::Free | ArbitrationPolicy::AgedPriority => true,
        }
    }

    /// Whether the active policy refuses an otherwise-committable SC by
    /// `(core, tid)` on `line` at `now`. Only AgedPriority ever refuses
    /// (a strictly older failure streak is active on the line).
    fn sc_refused(&self, core: usize, tid: u8, line: u64, now: u64) -> bool {
        match self.cfg.arbitration {
            ArbitrationPolicy::AgedPriority => {
                self.arbiter.must_refuse(self.gid(core, tid), line, now)
            }
            ArbitrationPolicy::Free | ArbitrationPolicy::NackHoldoff { .. } => false,
        }
    }

    /// Telemetry + policy bookkeeping for one failed SC. Telemetry updates
    /// under every policy (it never feeds back into timing). Only a
    /// `lost_race` failure — the reservation was genuinely gone, meaning
    /// some other thread committed — arms a NackHoldoff window or opens
    /// an AgedPriority streak. An arbitration *refusal* must not: a
    /// refusal-opened streak would hand the refused thread priority it
    /// has not earned, and with several locks per cache line a two-phase
    /// lock protocol then livelocks — each contender's commit on its
    /// first lock retires the very streak that would have let it take
    /// the second, so the two sides refuse each other forever.
    fn note_sc_failure(&mut self, core: usize, tid: u8, line: u64, now: u64, lost_race: bool) {
        let gid = self.gid(core, tid);
        if let Some(t) = self.stats.sc_threads.get_mut(gid) {
            t.record_failure();
        }
        if !lost_race {
            return;
        }
        match self.cfg.arbitration {
            ArbitrationPolicy::Free => {}
            ArbitrationPolicy::NackHoldoff { window } => {
                self.arbiter.arm_holdoff(core, tid, line, now, window);
            }
            ArbitrationPolicy::AgedPriority => self.arbiter.note_failure(gid, line, now),
        }
    }

    /// Telemetry + policy bookkeeping for one committed SC: ends the
    /// thread's failure run and (AgedPriority) retires its streak.
    fn note_sc_success(&mut self, core: usize, tid: u8, line: u64) {
        let gid = self.gid(core, tid);
        if let Some(t) = self.stats.sc_threads.get_mut(gid) {
            t.record_success();
        }
        if self.cfg.arbitration == ArbitrationPolicy::AgedPriority {
            self.arbiter.note_success(gid, line);
        }
    }

    /// Directory upgrade transaction: Shared -> Modified for `core`.
    /// Invalidates every other sharer (dropping their reservations).
    ///
    /// On the fabric: the `class` request (GetX, or a GLSC probe for
    /// `sc`/`vscattercond`) travels core→bank, the directory sends an
    /// invalidation to every other sharer and collects their acks, and the
    /// upgrade grant travels bank→core. The upgrade completes when the
    /// grant *and* every ack have arrived.
    fn upgrade(&mut self, core: usize, line: u64, now: u64, class: MsgClass) -> u64 {
        self.stats.upgrades += 1;
        let bank = self.cfg.bank_of(line);
        let src = self.noc.core_node(core);
        let dst = self.noc.bank_node(bank);
        let arrival = self.noc.send(
            src,
            dst,
            class,
            now + self.cfg.l1_hit_latency,
            &mut self.stats,
        );
        let start = self.banks[bank].reserve(arrival, self.cfg.l2_bank_occupancy);
        let resp = start + self.cfg.l2_latency;
        let sharers = {
            let p = self.banks[bank]
                .tags
                .peek_mut(line)
                .expect("inclusive L2 must hold upgraded line");
            let s = p.sharers;
            p.sharers = 0;
            p.owner = Some(core as u8);
            p.dirty = true;
            s
        };
        let mut acks_done = resp;
        for other in 0..self.l1s.len() {
            if other != core && sharers & (1 << other) != 0 {
                if let Some(victim) = self.l1s[other].invalidate(line) {
                    self.stats.invalidations += 1;
                    if victim.reservation != 0 {
                        self.stats.reservations_cleared_by_stores += 1;
                    }
                    acks_done = acks_done.max(self.inv_round_trip(bank, other, resp));
                }
            }
        }
        let grant = self
            .noc
            .send(dst, src, MsgClass::DataReply, resp, &mut self.stats);
        grant.max(acks_done)
    }

    /// Invalidation round trip: the directory's Inv message bank→core and
    /// the core's ack back, departing at `at`; returns the ack's arrival
    /// at the directory. Under the ideal fabric this is instantaneous, so
    /// it never moves any pre-NoC completion time.
    fn inv_round_trip(&mut self, bank: usize, core: usize, at: u64) -> u64 {
        let bnode = self.noc.bank_node(bank);
        let cnode = self.noc.core_node(core);
        let inv_at = self
            .noc
            .send(bnode, cnode, MsgClass::Inv, at, &mut self.stats);
        let ack_at = self
            .noc
            .send(cnode, bnode, MsgClass::InvAck, inv_at, &mut self.stats);
        self.stats.inv_acks += 1;
        ack_at
    }

    /// Miss path: walk the directory, fetch the line (L2 or DRAM), install
    /// it in `core`'s L1 and return the fill-complete cycle.
    ///
    /// On the fabric: the `class` request travels core→bank; directory
    /// probes (downgrades, invalidations) fan out bank→sharer with acks
    /// back; the data reply travels bank→core once the data is ready at
    /// the bank. The fill completes when the reply *and* every ack have
    /// arrived.
    fn fill(
        &mut self,
        core: usize,
        line: u64,
        now: u64,
        for_store: bool,
        demand: bool,
        class: MsgClass,
    ) -> u64 {
        let bank = self.cfg.bank_of(line);
        let src = self.noc.core_node(core);
        let dst = self.noc.bank_node(bank);
        let arrival = self.noc.send(
            src,
            dst,
            class,
            now + self.cfg.l1_hit_latency,
            &mut self.stats,
        );
        let start = self.banks[bank].reserve(arrival, self.cfg.l2_bank_occupancy);
        // Cycle the bank issues its probes and (at the earliest) the reply.
        let resp = start + self.cfg.l2_latency;
        let mut invalidate_list: Vec<usize> = Vec::new();
        let mut downgrade_owner: Option<usize> = None;

        let data_ready = if let Some(p) = self.banks[bank].tags.lookup_mut(line) {
            if demand {
                self.stats.l2_hits += 1;
            }
            let mut lat = resp.max(p.ready_at);
            match (p.owner, for_store) {
                (Some(owner), _) if owner as usize != core => {
                    // Remote modified copy: cache-to-cache forward.
                    lat += self.cfg.dirty_forward_extra;
                    p.dirty = true;
                    if for_store {
                        invalidate_list.push(owner as usize);
                        p.owner = Some(core as u8);
                        p.sharers = 0;
                    } else {
                        downgrade_owner = Some(owner as usize);
                        p.owner = None;
                        p.sharers = (1 << owner) | (1 << core);
                    }
                }
                (_, true) => {
                    // Store miss with only shared copies: invalidate them.
                    for c in 0..32usize {
                        if p.sharers & (1 << c) != 0 && c != core {
                            invalidate_list.push(c);
                        }
                    }
                    p.sharers = 0;
                    p.owner = Some(core as u8);
                    p.dirty = true;
                }
                (_, false) => {
                    p.sharers |= 1 << core;
                }
            }
            lat
        } else {
            if demand {
                self.stats.l2_misses += 1;
            }
            // `jitter_next_fill` is 0 whenever no fault plan is installed,
            // keeping fault-free timing bit-identical.
            let fill_done = start
                + self.cfg.l2_latency
                + self.cfg.dram_latency
                + std::mem::take(&mut self.jitter_next_fill);
            let payload = L2Payload {
                sharers: if for_store { 0 } else { 1 << core },
                owner: if for_store { Some(core as u8) } else { None },
                dirty: for_store,
                ready_at: fill_done,
            };
            if let Some((vline, vpay)) = self.banks[bank].tags.insert(line, payload) {
                self.back_invalidate(vline, &vpay, fill_done);
            }
            fill_done
        };

        let mut acks_done = resp;
        if let Some(owner) = downgrade_owner {
            self.stats.dirty_forwards += 1;
            if let Some(entry) = self.l1s[owner].peek_mut(line) {
                entry.state = L1State::Shared;
            }
            acks_done = acks_done.max(self.inv_round_trip(bank, owner, resp));
        }
        for victim_core in invalidate_list {
            if let Some(victim) = self.l1s[victim_core].invalidate(line) {
                self.stats.invalidations += 1;
                if victim.state == L1State::Modified {
                    self.stats.dirty_forwards += 1;
                }
                if victim.reservation != 0 {
                    self.stats.reservations_cleared_by_stores += 1;
                }
                acks_done = acks_done.max(self.inv_round_trip(bank, victim_core, resp));
            }
        }

        // Data reply to the requester once the bank has the data.
        let reply = self
            .noc
            .send(dst, src, MsgClass::DataReply, data_ready, &mut self.stats);
        let done = reply.max(acks_done);

        // Install in the requesting L1, handling the victim's directory
        // bookkeeping.
        let payload = LinePayload {
            state: if for_store {
                L1State::Modified
            } else {
                L1State::Shared
            },
            ready_at: done,
            reservation: 0,
        };
        if let Some((vline, vpay)) = self.l1s[core].install(line, payload) {
            self.evict_from_l1(core, vline, vpay, done);
        }
        done
    }

    /// Directory bookkeeping when `core`'s L1 evicts `vline` at cycle
    /// `at`. Dirty victims send a writeback message to the home bank.
    fn evict_from_l1(&mut self, core: usize, vline: u64, vpay: LinePayload, at: u64) {
        let bank = self.cfg.bank_of(vline);
        if let Some(p) = self.banks[bank].tags.peek_mut(vline) {
            match vpay.state {
                L1State::Modified => {
                    if p.owner == Some(core as u8) {
                        p.owner = None;
                    }
                    p.dirty = true; // writeback data (absorbed by the L2)
                }
                L1State::Shared => {
                    p.sharers &= !(1 << core);
                }
            }
        }
        if vpay.state == L1State::Modified {
            self.stats.writebacks += 1;
            let src = self.noc.core_node(core);
            let dst = self.noc.bank_node(bank);
            self.noc
                .send(src, dst, MsgClass::Writeback, at, &mut self.stats);
        }
    }

    /// Inclusion: when the L2 evicts a line at cycle `at`, every private
    /// copy must go (invalidation + ack on the fabric; a Modified copy
    /// additionally writes its data back).
    fn back_invalidate(&mut self, vline: u64, vpay: &L2Payload, at: u64) {
        let bank = self.cfg.bank_of(vline);
        for c in 0..self.l1s.len() {
            let holds = vpay.sharers & (1 << c) != 0 || vpay.owner == Some(c as u8);
            if !holds {
                continue;
            }
            if let Some(victim) = self.l1s[c].invalidate(vline) {
                self.stats.back_invalidations += 1;
                let inv_done = self.inv_round_trip(bank, c, at);
                if victim.state == L1State::Modified {
                    self.stats.writebacks += 1;
                    let cnode = self.noc.core_node(c);
                    let bnode = self.noc.bank_node(bank);
                    self.noc
                        .send(cnode, bnode, MsgClass::Writeback, inv_done, &mut self.stats);
                }
            }
        }
    }

    /// Total reservations dropped by full GLSC buffers across all L1s
    /// (always zero in the default per-line-tags mode).
    pub fn reservation_buffer_evictions(&self) -> u64 {
        self.l1s
            .iter()
            .map(L1Cache::reservation_buffer_evictions)
            .sum()
    }

    /// Verifies the coherence invariants, returning the first violation as
    /// a typed value: inclusion, directory/sharer agreement, and
    /// single-writer.
    ///
    /// # Errors
    ///
    /// The first [`InvariantViolation`] found, naming the line, the
    /// core(s) involved and the directory state observed.
    pub fn try_check_invariants(&self) -> Result<(), InvariantViolation> {
        for (c, l1) in self.l1s.iter().enumerate() {
            for (line, p) in l1.iter() {
                let bank = self.cfg.bank_of(line);
                let Some(dir) = self.banks[bank].tags.peek(line) else {
                    return Err(InvariantViolation::Inclusion { core: c, line });
                };
                match p.state {
                    L1State::Modified => {
                        if dir.owner != Some(c as u8) {
                            return Err(InvariantViolation::OwnerMismatch {
                                core: c,
                                line,
                                directory_owner: dir.owner,
                            });
                        }
                    }
                    L1State::Shared => {
                        if dir.sharers & (1 << c) == 0 {
                            return Err(InvariantViolation::MissingSharer {
                                core: c,
                                line,
                                sharers: dir.sharers,
                            });
                        }
                    }
                }
            }
        }
        for bank in &self.banks {
            for (line, dir) in bank.tags.iter() {
                if let Some(owner) = dir.owner {
                    if dir.sharers != 0 {
                        return Err(InvariantViolation::OwnedWithSharers {
                            owner,
                            line,
                            sharers: dir.sharers,
                        });
                    }
                    let l1p = self.l1s[owner as usize].peek(line);
                    if !l1p.is_some_and(|p| p.state == L1State::Modified) {
                        return Err(InvariantViolation::OwnerNotModified { owner, line });
                    }
                }
            }
        }
        Ok(())
    }

    /// Verifies the coherence invariants; used by tests.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated invariant. Use
    /// [`MemorySystem::try_check_invariants`] for a non-panicking, typed
    /// alternative.
    pub fn check_invariants(&self) {
        if let Err(e) = self.try_check_invariants() {
            panic!("{e}");
        }
    }

    /// Snapshot of every live reservation across all L1s as
    /// `(core, line, thread mask)` tuples, for livelock diagnostic dumps.
    pub fn reservation_state(&self) -> Vec<(usize, u64, u8)> {
        let mut out = Vec::new();
        for (c, l1) in self.l1s.iter().enumerate() {
            for (line, mask) in l1.reservation_entries() {
                out.push((c, line, mask));
            }
        }
        out
    }

    /// Captures a point-in-time copy of the entire memory system: the
    /// functional backing store, every L1 (tags, MSI states, dirty data,
    /// GLSC reservations in both per-line-tag and §3.3 buffer modes),
    /// every L2 bank with its directory, the per-core prefetcher streams,
    /// the on-die interconnect with every link's busy horizon (so
    /// in-flight fabric reservations survive the round trip), the event
    /// counters, and — crucially for replayable chaos runs — the
    /// installed [`FaultPlan`] including its private RNG state and pending
    /// DRAM and link jitter. Restoring the snapshot therefore resumes the
    /// exact access-by-access behavior of the original run.
    pub fn snapshot(&self) -> MemSnapshot {
        MemSnapshot {
            state: self.clone(),
        }
    }

    /// Replaces this memory system's state with the snapshot's.
    ///
    /// Shape compatibility (core count, cache geometry) is the caller's
    /// responsibility; `glsc_sim::Machine::restore` validates the whole
    /// machine configuration before delegating here.
    pub fn restore(&mut self, snap: &MemSnapshot) {
        *self = snap.state.clone();
    }
}

/// An opaque point-in-time copy of a [`MemorySystem`], produced by
/// [`MemorySystem::snapshot`]. Every field of the memory system is owned
/// data (no shared interior mutability anywhere in this crate), so the
/// deep copy held here is self-contained: it stays valid however the
/// original system evolves afterwards. A mounted CoW base layer is the one
/// shared piece — held by `Arc` — but bases are immutable by construction
/// ([`crate::Backing::freeze`]), so sharing cannot leak state between the
/// snapshot and the live system.
#[derive(Clone, Debug)]
pub struct MemSnapshot {
    state: MemorySystem,
}

impl MemSnapshot {
    /// The configuration the snapshotted system was built with.
    pub fn cfg(&self) -> &MemConfig {
        self.state.cfg()
    }

    /// Number of cores (L1 caches) in the snapshotted system.
    pub fn num_cores(&self) -> usize {
        self.state.num_cores()
    }

    /// Whether the snapshot carries a fault plan (and thus its RNG state).
    pub fn has_fault_plan(&self) -> bool {
        self.state.fault_plan().is_some()
    }

    /// Live reservations at snapshot time as `(core, line, thread mask)`.
    pub fn reservation_state(&self) -> Vec<(usize, u64, u8)> {
        self.state.reservation_state()
    }
}

glsc_wire::wire_struct!(MemorySystem {
    cfg,
    backing,
    l1s,
    banks,
    prefetchers,
    noc,
    stats,
    threads_per_core,
    arbiter,
    chaos,
    jitter_next_fill,
    oracle,
});
glsc_wire::wire_struct!(MemSnapshot { state });
