//! The coherence + timing engine tying L1s, the banked L2 directory, DRAM
//! and the prefetcher together.
//!
//! One call to [`MemorySystem::access`] models one line-granular request
//! accepted at an L1 port: it probes the L1, walks the MSI directory
//! protocol on a miss or upgrade, mutates all coherence and reservation
//! state, and returns the cycle at which the request's data is available.

use crate::backing::Backing;
use crate::config::MemConfig;
use crate::l1::{L1Cache, L1State, LinePayload};
use crate::l2::{L2Bank, L2Payload};
use crate::line_of;
use crate::prefetch::StridePrefetcher;
use crate::stats::MemStats;

/// The kind of request presented at an L1 port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemOp {
    /// Plain load.
    Load,
    /// Plain store (commits data; clears the line's GLSC reservation).
    Store,
    /// Load-linked: load plus reservation acquisition for the issuing SMT
    /// thread (used by scalar `ll` and by `vgatherlink`, §3.3).
    LoadLinked,
    /// Store-conditional: store iff the issuing thread still holds the
    /// line's reservation (used by scalar `sc` and by `vscattercond`).
    StoreCond,
}

/// Outcome of an accepted request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// Cycle at which the request completes (data available / store
    /// globally performed).
    pub done: u64,
    /// Whether the request hit in the L1.
    pub l1_hit: bool,
    /// For [`MemOp::StoreCond`]: whether the reservation check passed and
    /// the store was performed. `true` for all other ops.
    pub sc_ok: bool,
}

/// The full simulated memory system shared by all cores.
#[derive(Clone, Debug)]
pub struct MemorySystem {
    cfg: MemConfig,
    backing: Backing,
    l1s: Vec<L1Cache>,
    banks: Vec<L2Bank>,
    prefetchers: Vec<StridePrefetcher>,
    stats: MemStats,
}

impl MemorySystem {
    /// Builds a memory system for `num_cores` cores with `threads_per_core`
    /// SMT threads each (the prefetcher tracks one stream per thread).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`MemConfig::validate`]) or `num_cores` is 0 or exceeds 32.
    pub fn new(cfg: MemConfig, num_cores: usize, threads_per_core: usize) -> Self {
        cfg.validate();
        assert!(num_cores > 0 && num_cores <= 32, "1..=32 cores supported");
        assert!(threads_per_core > 0, "need at least one thread per core");
        let l1s = (0..num_cores)
            .map(|_| match cfg.glsc_buffer_entries {
                None => L1Cache::new(cfg.l1_sets(), cfg.l1_assoc, cfg.line_bytes),
                Some(k) => {
                    L1Cache::with_reservation_buffer(cfg.l1_sets(), cfg.l1_assoc, cfg.line_bytes, k)
                }
            })
            .collect();
        let banks = (0..cfg.l2_banks)
            .map(|_| L2Bank::new(cfg.l2_sets_per_bank(), cfg.l2_assoc, cfg.line_bytes))
            .collect();
        let prefetchers = (0..num_cores)
            .map(|_| StridePrefetcher::new(threads_per_core, cfg.prefetch_degree, cfg.line_bytes))
            .collect();
        Self {
            cfg,
            backing: Backing::new(),
            l1s,
            banks,
            prefetchers,
            stats: MemStats::default(),
        }
    }

    /// The configuration in effect.
    pub fn cfg(&self) -> &MemConfig {
        &self.cfg
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.l1s.len()
    }

    /// Accumulated event counters.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Resets the event counters (e.g. after warmup).
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
    }

    /// Read access to the functional memory image.
    pub fn backing(&self) -> &Backing {
        &self.backing
    }

    /// Write access to the functional memory image.
    pub fn backing_mut(&mut self) -> &mut Backing {
        &mut self.backing
    }

    /// The L1 of `core` (inspection for tests and statistics).
    pub fn l1(&self, core: usize) -> &L1Cache {
        &self.l1s[core]
    }

    /// Whether SMT thread `tid` of `core` holds the reservation on the line
    /// containing `addr`.
    pub fn holds_reservation(&self, core: usize, tid: u8, addr: u64) -> bool {
        self.l1s[core].holds_reservation(line_of(addr, self.cfg.line_bytes), tid)
    }

    /// Presents one request at `core`'s L1 port at cycle `now`.
    ///
    /// `tid` is the core-local SMT thread id of the requester, used for
    /// reservations and prefetch stream tracking. Timing is line-granular:
    /// callers split multi-line vector operations into one access per
    /// distinct line (the GSU does exactly this, combining same-line
    /// elements, §4.1).
    pub fn access(&mut self, core: usize, tid: u8, op: MemOp, addr: u64, now: u64) -> AccessResult {
        let line = line_of(addr, self.cfg.line_bytes);
        let result = self.access_line(core, tid, op, line, now, true);
        if self.cfg.prefetch && !matches!(op, MemOp::StoreCond) {
            for pf_line in self.prefetchers[core].observe(tid as usize, line) {
                self.prefetch_line(core, pf_line, now);
            }
        }
        result
    }

    fn prefetch_line(&mut self, core: usize, line: u64, now: u64) {
        if self.l1s[core].peek(line).is_some() {
            self.stats.prefetches_redundant += 1;
            return;
        }
        self.stats.prefetches_issued += 1;
        let _ = self.fill(core, line, now, false, false);
    }

    fn access_line(
        &mut self,
        core: usize,
        tid: u8,
        op: MemOp,
        line: u64,
        now: u64,
        demand: bool,
    ) -> AccessResult {
        debug_assert!(demand, "demand-only entry point");
        let hit_latency = self.cfg.l1_hit_latency;
        match op {
            MemOp::Load | MemOp::LoadLinked => {
                if let Some(p) = self.l1s[core].lookup_mut(line) {
                    let done = (now + hit_latency).max(p.ready_at);
                    if p.ready_at > now + hit_latency {
                        self.stats.hits_under_miss += 1;
                    }
                    self.stats.l1_hits += 1;
                    if op == MemOp::LoadLinked {
                        self.l1s[core].set_reservation(line, tid);
                    }
                    AccessResult {
                        done,
                        l1_hit: true,
                        sc_ok: true,
                    }
                } else {
                    self.stats.l1_misses += 1;
                    let done = self.fill(core, line, now, false, true);
                    if op == MemOp::LoadLinked {
                        self.l1s[core].set_reservation(line, tid);
                    }
                    AccessResult {
                        done,
                        l1_hit: false,
                        sc_ok: true,
                    }
                }
            }
            MemOp::Store => {
                if self.l1s[core].peek(line).is_some() {
                    self.stats.l1_hits += 1;
                    if self.l1s[core].clear_reservation(line) {
                        self.stats.reservations_cleared_by_stores += 1;
                    }
                    let p = self.l1s[core].lookup_mut(line).expect("resident");
                    let state = p.state;
                    let ready = p.ready_at;
                    let done = if state == L1State::Modified {
                        (now + hit_latency).max(ready)
                    } else {
                        let lat = self.upgrade(core, line, now);
                        self.l1s[core]
                            .peek_mut(line)
                            .expect("line resident during upgrade")
                            .state = L1State::Modified;
                        lat.max(ready)
                    };
                    AccessResult {
                        done,
                        l1_hit: true,
                        sc_ok: true,
                    }
                } else {
                    self.stats.l1_misses += 1;
                    let done = self.fill(core, line, now, true, true);
                    AccessResult {
                        done,
                        l1_hit: false,
                        sc_ok: true,
                    }
                }
            }
            MemOp::StoreCond => {
                // The reservation lives in the L1 entry, so a non-resident
                // line cannot hold one: fail fast (conservative ll/sc
                // semantics, §3).
                let holds = self.l1s[core].peek(line).is_some()
                    && self.l1s[core].holds_reservation(line, tid);
                if !holds {
                    self.stats.l1_hits += 1;
                    self.stats.sc_failures += 1;
                    return AccessResult {
                        done: now + hit_latency,
                        l1_hit: true,
                        sc_ok: false,
                    };
                }
                // The conditional store commits: every link on the line dies
                // (including other threads' — it is an intervening write
                // from their perspective).
                self.l1s[core].clear_reservation(line);
                let p = self.l1s[core].lookup_mut(line).expect("resident");
                let state = p.state;
                let ready = p.ready_at;
                self.stats.l1_hits += 1;
                self.stats.sc_successes += 1;
                let done = if state == L1State::Modified {
                    (now + hit_latency).max(ready)
                } else {
                    let lat = self.upgrade(core, line, now);
                    self.l1s[core]
                        .peek_mut(line)
                        .expect("line resident during upgrade")
                        .state = L1State::Modified;
                    lat.max(ready)
                };
                AccessResult {
                    done,
                    l1_hit: true,
                    sc_ok: true,
                }
            }
        }
    }

    /// Directory upgrade transaction: Shared -> Modified for `core`.
    /// Invalidates every other sharer (dropping their reservations).
    fn upgrade(&mut self, core: usize, line: u64, now: u64) -> u64 {
        self.stats.upgrades += 1;
        let bank = self.cfg.bank_of(line);
        let arrival = now + self.cfg.l1_hit_latency;
        let start = self.banks[bank].reserve(arrival, self.cfg.l2_bank_occupancy);
        let done = start + self.cfg.l2_latency;
        let sharers = {
            let p = self.banks[bank]
                .tags
                .peek_mut(line)
                .expect("inclusive L2 must hold upgraded line");
            let s = p.sharers;
            p.sharers = 0;
            p.owner = Some(core as u8);
            p.dirty = true;
            s
        };
        for other in 0..self.l1s.len() {
            if other != core && sharers & (1 << other) != 0 {
                if let Some(victim) = self.l1s[other].invalidate(line) {
                    self.stats.invalidations += 1;
                    if victim.reservation != 0 {
                        self.stats.reservations_cleared_by_stores += 1;
                    }
                }
            }
        }
        done
    }

    /// Miss path: walk the directory, fetch the line (L2 or DRAM), install
    /// it in `core`'s L1 and return the fill-complete cycle.
    fn fill(&mut self, core: usize, line: u64, now: u64, for_store: bool, demand: bool) -> u64 {
        let bank = self.cfg.bank_of(line);
        let arrival = now + self.cfg.l1_hit_latency;
        let start = self.banks[bank].reserve(arrival, self.cfg.l2_bank_occupancy);
        let mut invalidate_list: Vec<usize> = Vec::new();
        let mut downgrade_owner: Option<usize> = None;

        let done = if let Some(p) = self.banks[bank].tags.lookup_mut(line) {
            if demand {
                self.stats.l2_hits += 1;
            }
            let mut lat = (start + self.cfg.l2_latency).max(p.ready_at);
            match (p.owner, for_store) {
                (Some(owner), _) if owner as usize != core => {
                    // Remote modified copy: cache-to-cache forward.
                    lat += self.cfg.dirty_forward_extra;
                    p.dirty = true;
                    if for_store {
                        invalidate_list.push(owner as usize);
                        p.owner = Some(core as u8);
                        p.sharers = 0;
                    } else {
                        downgrade_owner = Some(owner as usize);
                        p.owner = None;
                        p.sharers = (1 << owner) | (1 << core);
                    }
                }
                (_, true) => {
                    // Store miss with only shared copies: invalidate them.
                    for c in 0..32usize {
                        if p.sharers & (1 << c) != 0 && c != core {
                            invalidate_list.push(c);
                        }
                    }
                    p.sharers = 0;
                    p.owner = Some(core as u8);
                    p.dirty = true;
                }
                (_, false) => {
                    p.sharers |= 1 << core;
                }
            }
            lat
        } else {
            if demand {
                self.stats.l2_misses += 1;
            }
            let fill_done = start + self.cfg.l2_latency + self.cfg.dram_latency;
            let payload = L2Payload {
                sharers: if for_store { 0 } else { 1 << core },
                owner: if for_store { Some(core as u8) } else { None },
                dirty: for_store,
                ready_at: fill_done,
            };
            if let Some((vline, vpay)) = self.banks[bank].tags.insert(line, payload) {
                self.back_invalidate(vline, &vpay);
            }
            fill_done
        };

        if let Some(owner) = downgrade_owner {
            self.stats.dirty_forwards += 1;
            if let Some(entry) = self.l1s[owner].peek_mut(line) {
                entry.state = L1State::Shared;
            }
        }
        for victim_core in invalidate_list {
            if let Some(victim) = self.l1s[victim_core].invalidate(line) {
                self.stats.invalidations += 1;
                if victim.state == L1State::Modified {
                    self.stats.dirty_forwards += 1;
                }
                if victim.reservation != 0 {
                    self.stats.reservations_cleared_by_stores += 1;
                }
            }
        }

        // Install in the requesting L1, handling the victim's directory
        // bookkeeping.
        let payload = LinePayload {
            state: if for_store {
                L1State::Modified
            } else {
                L1State::Shared
            },
            ready_at: done,
            reservation: 0,
        };
        if let Some((vline, vpay)) = self.l1s[core].install(line, payload) {
            self.evict_from_l1(core, vline, vpay);
        }
        done
    }

    /// Directory bookkeeping when `core`'s L1 evicts `vline`.
    fn evict_from_l1(&mut self, core: usize, vline: u64, vpay: LinePayload) {
        let bank = self.cfg.bank_of(vline);
        if let Some(p) = self.banks[bank].tags.peek_mut(vline) {
            match vpay.state {
                L1State::Modified => {
                    if p.owner == Some(core as u8) {
                        p.owner = None;
                    }
                    p.dirty = true; // writeback data (timing ignored)
                }
                L1State::Shared => {
                    p.sharers &= !(1 << core);
                }
            }
        }
    }

    /// Inclusion: when the L2 evicts a line, every private copy must go.
    fn back_invalidate(&mut self, vline: u64, vpay: &L2Payload) {
        for c in 0..self.l1s.len() {
            let holds = vpay.sharers & (1 << c) != 0 || vpay.owner == Some(c as u8);
            if holds && self.l1s[c].invalidate(vline).is_some() {
                self.stats.back_invalidations += 1;
            }
        }
    }

    /// Total reservations dropped by full GLSC buffers across all L1s
    /// (always zero in the default per-line-tags mode).
    pub fn reservation_buffer_evictions(&self) -> u64 {
        self.l1s
            .iter()
            .map(L1Cache::reservation_buffer_evictions)
            .sum()
    }

    /// Verifies the coherence invariants; used by tests.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated invariant:
    /// inclusion, directory/sharer agreement, and single-writer.
    pub fn check_invariants(&self) {
        for (c, l1) in self.l1s.iter().enumerate() {
            for (line, p) in l1.iter() {
                let bank = self.cfg.bank_of(line);
                let dir = self.banks[bank].tags.peek(line).unwrap_or_else(|| {
                    panic!("inclusion violated: L1 {c} holds {line:#x} not in L2")
                });
                match p.state {
                    L1State::Modified => assert_eq!(
                        dir.owner,
                        Some(c as u8),
                        "L1 {c} has {line:#x} Modified but directory owner is {:?}",
                        dir.owner
                    ),
                    L1State::Shared => assert_ne!(
                        dir.sharers & (1 << c),
                        0,
                        "L1 {c} has {line:#x} Shared but is not a directory sharer"
                    ),
                }
            }
        }
        for bank in &self.banks {
            for (line, dir) in bank.tags.iter() {
                if let Some(owner) = dir.owner {
                    assert_eq!(dir.sharers, 0, "owned line {line:#x} must have no sharers");
                    let l1p = self.l1s[owner as usize].peek(line);
                    assert!(
                        l1p.is_some_and(|p| p.state == L1State::Modified),
                        "directory owner {owner} does not hold {line:#x} Modified"
                    );
                }
            }
        }
    }
}
