//! Private L1 data cache with the GLSC reservation extension.
//!
//! §3.3 of the paper describes two implementations of the GLSC entries,
//! and this module provides both (selected by
//! [`MemConfig::glsc_buffer_entries`](crate::MemConfig)):
//!
//! * **Per-line tags** (default): each line entry carries a valid bit per
//!   SMT thread — the paper's "(1 + # of SMT threads) bits per cache
//!   line". Several threads may hold reservations on the same line
//!   simultaneously; any committed store to the line clears them all.
//! * **Fully-associative buffer**: "an alternative implementation of the
//!   GLSC entries would be to hold them in a fully associative buffer ...
//!   The number of entries in this buffer could vary from one to
//!   SIMD-width × # of SMT threads, and so could be made quite small."
//!   Inserting past capacity evicts the oldest entry (its reservations
//!   die — a conservative behavior §3 explicitly allows).
//!
//! The same entries back the scalar load-linked/store-conditional
//! reservation — the paper implements ll/sc through the same mechanism.

use crate::tags::TagArray;
use std::collections::VecDeque;

/// MSI coherence state of an L1 line (Invalid lines are simply absent).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum L1State {
    /// Shared: readable; a write requires an upgrade at the directory.
    Shared,
    /// Modified: exclusive and dirty.
    Modified,
}

/// Per-line L1 payload: coherence state, fill completion time, and the GLSC
/// reservation entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinePayload {
    /// Coherence state.
    pub state: L1State,
    /// Cycle at which the line's data arrives (for miss-combining: accesses
    /// before this cycle complete at this cycle).
    pub ready_at: u64,
    /// GLSC entry: bit `t` set when SMT thread `t` holds a reservation.
    pub reservation: u8,
}

/// Where GLSC reservations are stored (§3.3's two designs).
#[derive(Clone, Debug)]
enum ReservationStore {
    /// In the per-line tag bits ([`LinePayload::reservation`]).
    PerLine,
    /// In a small fully-associative FIFO buffer of `(line, thread mask)`.
    Buffer {
        entries: VecDeque<(u64, u8)>,
        cap: usize,
        evictions: u64,
    },
}

/// One core's private L1 data cache (tags only).
#[derive(Clone, Debug)]
pub struct L1Cache {
    tags: TagArray<LinePayload>,
    reservations: ReservationStore,
}

impl L1Cache {
    /// Creates an L1 with the given geometry using per-line reservation
    /// tag bits.
    pub fn new(sets: usize, assoc: usize, line_bytes: u64) -> Self {
        Self {
            tags: TagArray::new(sets, assoc, line_bytes),
            reservations: ReservationStore::PerLine,
        }
    }

    /// Creates an L1 whose GLSC entries live in a fully-associative buffer
    /// of `buffer_entries` entries (§3.3's alternative design).
    ///
    /// # Panics
    ///
    /// Panics if `buffer_entries` is zero.
    pub fn with_reservation_buffer(
        sets: usize,
        assoc: usize,
        line_bytes: u64,
        buffer_entries: usize,
    ) -> Self {
        assert!(buffer_entries > 0, "buffer needs at least one entry");
        Self {
            tags: TagArray::new(sets, assoc, line_bytes),
            reservations: ReservationStore::Buffer {
                entries: VecDeque::with_capacity(buffer_entries),
                cap: buffer_entries,
                evictions: 0,
            },
        }
    }

    /// Returns the cache to its just-constructed state (no resident lines,
    /// no reservations, eviction counter zeroed), keeping allocations.
    pub fn reset(&mut self) {
        self.tags.clear();
        if let ReservationStore::Buffer {
            entries, evictions, ..
        } = &mut self.reservations
        {
            entries.clear();
            *evictions = 0;
        }
    }

    /// Reservations dropped because the fully-associative buffer was full
    /// (always 0 in per-line mode).
    pub fn reservation_buffer_evictions(&self) -> u64 {
        match &self.reservations {
            ReservationStore::PerLine => 0,
            ReservationStore::Buffer { evictions, .. } => *evictions,
        }
    }

    /// Looks up a line, updating LRU. Returns the payload on hit.
    pub fn lookup_mut(&mut self, line: u64) -> Option<&mut LinePayload> {
        self.tags.lookup_mut(line)
    }

    /// Looks up a line without LRU side effects.
    pub fn peek(&self, line: u64) -> Option<&LinePayload> {
        self.tags.peek(line)
    }

    /// Snoop access (no LRU update).
    pub fn peek_mut(&mut self, line: u64) -> Option<&mut LinePayload> {
        self.tags.peek_mut(line)
    }

    /// Installs a line, returning the evicted `(line, payload)` if any.
    /// Eviction of a line implicitly drops its reservation — one of the
    /// allowed conservative behaviours of §3 ("it is acceptable to have
    /// reservations invalidated ... such as cache line evictions"). In
    /// buffer mode the victim's buffered reservations are folded into the
    /// returned payload so callers can account for them uniformly.
    pub fn install(&mut self, line: u64, payload: LinePayload) -> Option<(u64, LinePayload)> {
        let evicted = self.tags.insert(line, payload);
        evicted.map(|(vline, mut vpay)| {
            vpay.reservation |= self.take_buffered(vline);
            (vline, vpay)
        })
    }

    /// Invalidates a line (coherence or inclusion victim), returning its
    /// payload. Any reservation on it dies with it (buffered reservations
    /// are folded into the returned payload).
    pub fn invalidate(&mut self, line: u64) -> Option<LinePayload> {
        let out = self.tags.invalidate(line);
        let buffered = self.take_buffered(line);
        out.map(|mut p| {
            p.reservation |= buffered;
            p
        })
    }

    /// Removes and returns any buffered reservation mask for `line`.
    fn take_buffered(&mut self, line: u64) -> u8 {
        match &mut self.reservations {
            ReservationStore::PerLine => 0,
            ReservationStore::Buffer { entries, .. } => {
                if let Some(pos) = entries.iter().position(|(l, _)| *l == line) {
                    entries.remove(pos).map_or(0, |(_, m)| m)
                } else {
                    0
                }
            }
        }
    }

    /// Clears every thread's reservation on `line` (a committed store to
    /// the line — from any thread — invalidates all links on it). Returns
    /// `true` if any reservation was held.
    pub fn clear_reservation(&mut self, line: u64) -> bool {
        match &mut self.reservations {
            ReservationStore::PerLine => {
                if let Some(p) = self.tags.peek_mut(line) {
                    let had = p.reservation != 0;
                    p.reservation = 0;
                    had
                } else {
                    false
                }
            }
            ReservationStore::Buffer { .. } => self.take_buffered(line) != 0,
        }
    }

    /// Adds `tid`'s reservation on `line`; other threads' reservations on
    /// the line are unaffected (per-thread valid bits). In per-line mode
    /// the line must be resident; in buffer mode a full buffer evicts its
    /// oldest entry. Returns `true` when the insertion displaced a
    /// buffered reservation (always `false` in per-line mode), so the
    /// memory system can surface §3.3 buffer pressure in its counters.
    pub fn set_reservation(&mut self, line: u64, tid: u8) -> bool {
        match &mut self.reservations {
            ReservationStore::PerLine => {
                if let Some(p) = self.tags.peek_mut(line) {
                    p.reservation |= 1 << tid;
                }
                false
            }
            ReservationStore::Buffer {
                entries,
                cap,
                evictions,
            } => {
                if let Some((_, m)) = entries.iter_mut().find(|(l, _)| *l == line) {
                    *m |= 1 << tid;
                    return false;
                }
                let overflowed = entries.len() >= *cap;
                if overflowed {
                    entries.pop_front();
                    *evictions += 1;
                }
                entries.push_back((line, 1 << tid));
                overflowed
            }
        }
    }

    /// Clears every reservation held in this L1 (a context-switch flush,
    /// one of §3.2's destructive events). Returns the number of lines that
    /// lost at least one reservation.
    pub fn clear_all_reservations(&mut self) -> u64 {
        match &mut self.reservations {
            ReservationStore::PerLine => {
                let mut cleared = 0;
                for (_, p) in self.tags.iter_mut() {
                    if p.reservation != 0 {
                        p.reservation = 0;
                        cleared += 1;
                    }
                }
                cleared
            }
            ReservationStore::Buffer { entries, .. } => {
                let cleared = entries.len() as u64;
                entries.clear();
                cleared
            }
        }
    }

    /// Force-evicts the oldest entry of the §3.3 reservation buffer
    /// (capacity-overflow pressure from a fault injector), counting it as
    /// a buffer eviction. Returns `false` in per-line mode or when the
    /// buffer is empty.
    pub fn force_buffer_eviction(&mut self) -> bool {
        match &mut self.reservations {
            ReservationStore::PerLine => false,
            ReservationStore::Buffer {
                entries, evictions, ..
            } => {
                if entries.pop_front().is_some() {
                    *evictions += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Snapshot of every live reservation as `(line, thread mask)` pairs,
    /// in unspecified order. Used for livelock diagnostic dumps.
    pub fn reservation_entries(&self) -> Vec<(u64, u8)> {
        match &self.reservations {
            ReservationStore::PerLine => self
                .tags
                .iter()
                .filter(|(_, p)| p.reservation != 0)
                .map(|(line, p)| (line, p.reservation))
                .collect(),
            ReservationStore::Buffer { entries, .. } => entries.iter().copied().collect(),
        }
    }

    /// Whether `tid` currently holds a reservation on `line`.
    pub fn holds_reservation(&self, line: u64, tid: u8) -> bool {
        match &self.reservations {
            ReservationStore::PerLine => self
                .peek(line)
                .is_some_and(|p| p.reservation & (1 << tid) != 0),
            ReservationStore::Buffer { entries, .. } => entries
                .iter()
                .any(|(l, m)| *l == line && m & (1 << tid) != 0),
        }
    }

    /// Whether any thread holds a reservation on `line` (other than
    /// possibly `except_tid`).
    pub fn other_reservations(&self, line: u64, except_tid: u8) -> bool {
        match &self.reservations {
            ReservationStore::PerLine => self
                .peek(line)
                .is_some_and(|p| p.reservation & !(1 << except_tid) != 0),
            ReservationStore::Buffer { entries, .. } => entries
                .iter()
                .any(|(l, m)| *l == line && m & !(1 << except_tid) != 0),
        }
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Iterates over resident lines.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &LinePayload)> {
        self.tags.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> L1Cache {
        L1Cache::new(4, 2, 64)
    }

    fn pay(state: L1State) -> LinePayload {
        LinePayload {
            state,
            ready_at: 0,
            reservation: 0,
        }
    }

    #[test]
    fn install_lookup_invalidate() {
        let mut c = l1();
        c.install(0, pay(L1State::Shared));
        assert_eq!(c.peek(0).unwrap().state, L1State::Shared);
        assert!(c.invalidate(0).is_some());
        assert!(c.peek(0).is_none());
    }

    #[test]
    fn reservation_lifecycle() {
        let mut c = l1();
        c.install(0, pay(L1State::Shared));
        assert!(!c.holds_reservation(0, 1));
        c.set_reservation(0, 1);
        assert!(c.holds_reservation(0, 1));
        assert!(!c.holds_reservation(0, 2));
        // A second linker coexists with the first (per-thread valid bits).
        c.set_reservation(0, 2);
        assert!(c.holds_reservation(0, 1));
        assert!(c.holds_reservation(0, 2));
        c.clear_reservation(0);
        assert!(!c.holds_reservation(0, 1));
        assert!(!c.holds_reservation(0, 2));
    }

    #[test]
    fn eviction_drops_reservation() {
        let mut c = l1(); // 4 sets x 2 ways, 64B lines: stride 256 shares a set
        c.install(0, pay(L1State::Shared));
        c.set_reservation(0, 0);
        c.install(256, pay(L1State::Shared));
        let evicted = c.install(512, pay(L1State::Shared));
        // line 0 was LRU
        assert_eq!(evicted.unwrap().0, 0);
        assert!(!c.holds_reservation(0, 0));
    }

    #[test]
    fn set_reservation_on_absent_line_is_noop() {
        let mut c = l1();
        c.set_reservation(0, 0);
        assert!(!c.holds_reservation(0, 0));
        c.clear_reservation(64); // no panic
    }
}

// ---- durable-snapshot serialization --------------------------------------

impl glsc_wire::Wire for L1State {
    fn encode(&self, w: &mut glsc_wire::Writer) {
        w.put_u8(match self {
            L1State::Shared => 0,
            L1State::Modified => 1,
        });
    }
    fn decode(r: &mut glsc_wire::Reader<'_>) -> Result<Self, glsc_wire::WireError> {
        let at = r.pos();
        match r.get_u8()? {
            0 => Ok(L1State::Shared),
            1 => Ok(L1State::Modified),
            _ => Err(glsc_wire::WireError::Invalid {
                at,
                what: "L1State tag",
            }),
        }
    }
}

glsc_wire::wire_struct!(LinePayload {
    state,
    ready_at,
    reservation,
});

impl glsc_wire::Wire for ReservationStore {
    fn encode(&self, w: &mut glsc_wire::Writer) {
        match self {
            ReservationStore::PerLine => w.put_u8(0),
            ReservationStore::Buffer {
                entries,
                cap,
                evictions,
            } => {
                w.put_u8(1);
                entries.encode(w);
                cap.encode(w);
                evictions.encode(w);
            }
        }
    }
    fn decode(r: &mut glsc_wire::Reader<'_>) -> Result<Self, glsc_wire::WireError> {
        use glsc_wire::Wire;
        let at = r.pos();
        match r.get_u8()? {
            0 => Ok(ReservationStore::PerLine),
            1 => Ok(ReservationStore::Buffer {
                entries: Wire::decode(r)?,
                cap: Wire::decode(r)?,
                evictions: Wire::decode(r)?,
            }),
            _ => Err(glsc_wire::WireError::Invalid {
                at,
                what: "ReservationStore tag",
            }),
        }
    }
}

glsc_wire::wire_struct!(L1Cache { tags, reservations });
