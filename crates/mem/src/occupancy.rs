//! Shared busy-horizon occupancy accounting.
//!
//! Both the banked L2 ([`crate::L2Bank`]) and every interconnect link
//! ([`crate::Noc`]) serialize requests the same way: a resource is held
//! for a fixed number of cycles per message, and a request arriving while
//! the resource is busy waits until it frees. Historically the L2 carried
//! its own private `next_free` field; the NoC work folded the accounting
//! into this one utility so bank and link contention provably follow the
//! same reservation discipline.

/// A single-server busy horizon: the earliest cycle at which the resource
/// can accept another request. Reservations are processed in call order,
/// which the simulator guarantees is deterministic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BusyHorizon {
    next_free: u64,
}

impl BusyHorizon {
    /// A horizon that is free from cycle 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves the resource for one request arriving at `arrival`,
    /// holding it for `occupancy` cycles; returns the cycle at which the
    /// resource starts serving the request (`>= arrival`).
    pub fn reserve(&mut self, arrival: u64, occupancy: u64) -> u64 {
        let start = arrival.max(self.next_free);
        self.next_free = start + occupancy;
        start
    }

    /// The first cycle at which the resource is free again.
    pub fn next_free(&self) -> u64 {
        self.next_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_back_to_back_arrivals() {
        let mut h = BusyHorizon::new();
        assert_eq!(h.reserve(10, 2), 10);
        assert_eq!(h.reserve(10, 2), 12); // queued behind the first
        assert_eq!(h.reserve(30, 2), 30); // idle again
        assert_eq!(h.next_free(), 32);
    }

    #[test]
    fn zero_occupancy_never_queues() {
        let mut h = BusyHorizon::new();
        assert_eq!(h.reserve(5, 0), 5);
        assert_eq!(h.reserve(5, 0), 5);
        assert_eq!(h.next_free(), 5);
    }
}

glsc_wire::wire_struct!(BusyHorizon { next_free });
