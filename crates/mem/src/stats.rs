//! Memory-system event counters.

use crate::noc::NocStats;

/// Counters collected by [`crate::MemorySystem`]. All counts are
/// machine-wide; per-thread instruction statistics live in `glsc-sim`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Demand accesses that hit in an L1.
    pub l1_hits: u64,
    /// Demand accesses that missed in an L1.
    pub l1_misses: u64,
    /// L1 misses that hit in the L2.
    pub l2_hits: u64,
    /// L1 misses that also missed in the L2 (DRAM fills).
    pub l2_misses: u64,
    /// Store upgrades (Shared -> Modified at the directory).
    pub upgrades: u64,
    /// L1 copies invalidated by coherence (stores by other cores).
    pub invalidations: u64,
    /// L1 copies invalidated to keep the L2 inclusive.
    pub back_invalidations: u64,
    /// Dirty lines forwarded from a remote L1 (cache-to-cache).
    pub dirty_forwards: u64,
    /// Store-conditional requests that failed the reservation check.
    pub sc_failures: u64,
    /// Store-conditional requests that succeeded.
    pub sc_successes: u64,
    /// Reservations cleared by stores from other threads/cores.
    pub reservations_cleared_by_stores: u64,
    /// Prefetch requests issued.
    pub prefetches_issued: u64,
    /// Prefetches dropped because the line was already resident.
    pub prefetches_redundant: u64,
    /// Demand accesses that found their line still in flight (fill pending).
    pub hits_under_miss: u64,
    /// Invalidation acknowledgements returned to the directory (one per
    /// invalidation or downgrade-probe message sent over the fabric).
    pub inv_acks: u64,
    /// Dirty-line writebacks from an L1 to its home bank (natural
    /// evictions, chaos evictions, and back-invalidations of Modified
    /// copies).
    pub writebacks: u64,
    /// Reservations displaced from the §3.3 fully-associative buffer
    /// (capacity overflow on insertion plus chaos-forced evictions;
    /// always zero in the default per-line-tag mode). Unlike the
    /// lifetime tally in `glsc-mem::l1`, this counter participates in
    /// `reset_stats` like every other event count.
    pub reservation_buffer_evictions: u64,
    /// Per-global-thread store-conditional forward-progress telemetry,
    /// indexed by `core * threads_per_core + tid`. Sized at construction;
    /// empty only for a default-constructed `MemStats`.
    pub sc_threads: Vec<ThreadScStats>,
    /// On-die interconnect counters (per message class and per link).
    pub noc: NocStats,
}

/// Store-conditional forward-progress counters for one hardware thread
/// (DESIGN.md §12). Pure observation: these update identically under
/// every [`ArbitrationPolicy`](crate::ArbitrationPolicy) and never feed
/// back into timing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ThreadScStats {
    /// Store-conditional requests presented at the L1 port.
    pub attempts: u64,
    /// Attempts that committed.
    pub successes: u64,
    /// Attempts that failed (lost reservation, or refused by the active
    /// arbitration policy).
    pub failures: u64,
    /// Length of the current run of consecutive failures.
    pub cur_streak: u64,
    /// High-water mark of consecutive failures — the starvation signal
    /// the `glsc-sim` watchdog thresholds on.
    pub max_streak: u64,
}

impl ThreadScStats {
    /// Records one failed attempt.
    pub fn record_failure(&mut self) {
        self.attempts += 1;
        self.failures += 1;
        self.cur_streak += 1;
        self.max_streak = self.max_streak.max(self.cur_streak);
    }

    /// Records one committed attempt, ending any failure run.
    pub fn record_success(&mut self) {
        self.attempts += 1;
        self.successes += 1;
        self.cur_streak = 0;
    }
}

impl MemStats {
    /// Total demand L1 accesses.
    pub fn l1_accesses(&self) -> u64 {
        self.l1_hits + self.l1_misses
    }

    /// L1 hit rate in [0, 1]; 1.0 when there were no accesses.
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.l1_accesses();
        if total == 0 {
            1.0
        } else {
            self.l1_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_sc_streak_bookkeeping() {
        let mut t = ThreadScStats::default();
        t.record_failure();
        t.record_failure();
        t.record_success();
        t.record_failure();
        assert_eq!(t.attempts, 4);
        assert_eq!(t.successes, 1);
        assert_eq!(t.failures, 3);
        assert_eq!(t.cur_streak, 1);
        assert_eq!(t.max_streak, 2);
    }

    #[test]
    fn hit_rate_edges() {
        let mut s = MemStats::default();
        assert_eq!(s.l1_hit_rate(), 1.0);
        s.l1_hits = 3;
        s.l1_misses = 1;
        assert_eq!(s.l1_accesses(), 4);
        assert!((s.l1_hit_rate() - 0.75).abs() < 1e-12);
    }
}

glsc_wire::wire_struct!(ThreadScStats {
    attempts,
    successes,
    failures,
    cur_streak,
    max_streak,
});
glsc_wire::wire_struct!(MemStats {
    l1_hits,
    l1_misses,
    l2_hits,
    l2_misses,
    upgrades,
    invalidations,
    back_invalidations,
    dirty_forwards,
    sc_failures,
    sc_successes,
    reservations_cleared_by_stores,
    prefetches_issued,
    prefetches_redundant,
    hits_under_miss,
    inv_acks,
    writebacks,
    reservation_buffer_evictions,
    sc_threads,
    noc,
});
