//! Sparse backing store: the functional memory image.
//!
//! The simulator is execution-driven (paper §4.1): programs compute on real
//! data. Values live here; the cache models in this crate carry only tags
//! and state. Pages are allocated lazily, so programs can use widely
//! separated address regions without cost.

use std::collections::HashMap;

const PAGE_BYTES: usize = 4096;
const PAGE_SHIFT: u32 = 12;

/// Sparse, lazily allocated flat memory. All accesses are naturally aligned
/// 32-bit words (the element size of the simulated SIMD ISA).
#[derive(Clone, Debug, Default)]
pub struct Backing {
    pages: HashMap<u64, Box<[u8; PAGE_BYTES]>>,
}

impl Backing {
    /// Creates an empty store; reads of untouched memory return zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pages touched so far.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    #[inline]
    fn split(addr: u64) -> (u64, usize) {
        (addr >> PAGE_SHIFT, (addr as usize) & (PAGE_BYTES - 1))
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        let (page, off) = Self::split(addr);
        self.pages.get(&page).map_or(0, |p| p[off])
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let (page, off) = Self::split(addr);
        self.pages
            .entry(page)
            .or_insert_with(|| Box::new([0; PAGE_BYTES]))[off] = value;
    }

    /// Reads a 32-bit word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-byte aligned (the ISA requires naturally
    /// aligned element accesses).
    pub fn read_u32(&self, addr: u64) -> u32 {
        assert_eq!(addr % 4, 0, "unaligned 32-bit read at {addr:#x}");
        let (page, off) = Self::split(addr);
        match self.pages.get(&page) {
            Some(p) => u32::from_le_bytes(p[off..off + 4].try_into().expect("4 bytes")),
            None => 0,
        }
    }

    /// Writes a 32-bit word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-byte aligned.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        assert_eq!(addr % 4, 0, "unaligned 32-bit write at {addr:#x}");
        let (page, off) = Self::split(addr);
        let p = self
            .pages
            .entry(page)
            .or_insert_with(|| Box::new([0; PAGE_BYTES]));
        p[off..off + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads a 32-bit float (bit pattern of the word at `addr`).
    pub fn read_f32(&self, addr: u64) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes a 32-bit float.
    pub fn write_f32(&mut self, addr: u64, value: f32) {
        self.write_u32(addr, value.to_bits());
    }

    /// Copies a slice of words into memory starting at `addr`.
    pub fn write_u32_slice(&mut self, addr: u64, values: &[u32]) {
        for (i, v) in values.iter().enumerate() {
            self.write_u32(addr + 4 * i as u64, *v);
        }
    }

    /// Copies a slice of floats into memory starting at `addr`.
    pub fn write_f32_slice(&mut self, addr: u64, values: &[f32]) {
        for (i, v) in values.iter().enumerate() {
            self.write_f32(addr + 4 * i as u64, *v);
        }
    }

    /// Reads `n` consecutive words starting at `addr`.
    pub fn read_u32_vec(&self, addr: u64, n: usize) -> Vec<u32> {
        (0..n).map(|i| self.read_u32(addr + 4 * i as u64)).collect()
    }

    /// Reads `n` consecutive floats starting at `addr`.
    pub fn read_f32_vec(&self, addr: u64, n: usize) -> Vec<f32> {
        (0..n).map(|i| self.read_f32(addr + 4 * i as u64)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let b = Backing::new();
        assert_eq!(b.read_u32(0x1000), 0);
        assert_eq!(b.read_u8(7), 0);
        assert_eq!(b.resident_pages(), 0);
    }

    #[test]
    fn read_back_what_was_written() {
        let mut b = Backing::new();
        b.write_u32(0x2000, 0xdead_beef);
        assert_eq!(b.read_u32(0x2000), 0xdead_beef);
        b.write_f32(0x2004, 1.5);
        assert_eq!(b.read_f32(0x2004), 1.5);
        assert_eq!(b.resident_pages(), 1);
    }

    #[test]
    fn pages_are_independent() {
        let mut b = Backing::new();
        b.write_u32(0x0, 1);
        b.write_u32(0x10_0000, 2);
        assert_eq!(b.read_u32(0x0), 1);
        assert_eq!(b.read_u32(0x10_0000), 2);
        assert_eq!(b.resident_pages(), 2);
    }

    #[test]
    fn slice_helpers_round_trip() {
        let mut b = Backing::new();
        b.write_u32_slice(0x3000, &[1, 2, 3, 4]);
        assert_eq!(b.read_u32_vec(0x3000, 4), vec![1, 2, 3, 4]);
        b.write_f32_slice(0x4000, &[0.5, -2.0]);
        assert_eq!(b.read_f32_vec(0x4000, 2), vec![0.5, -2.0]);
    }

    #[test]
    fn word_straddling_page_boundary_is_not_needed_but_bytes_work() {
        let mut b = Backing::new();
        b.write_u8(4095, 0xab);
        b.write_u8(4096, 0xcd);
        assert_eq!(b.read_u8(4095), 0xab);
        assert_eq!(b.read_u8(4096), 0xcd);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_read_panics() {
        let b = Backing::new();
        let _ = b.read_u32(2);
    }
}
