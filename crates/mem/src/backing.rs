//! Sparse backing store: the functional memory image.
//!
//! The simulator is execution-driven (paper §4.1): programs compute on real
//! data. Values live here; the cache models in this crate carry only tags
//! and state. Pages are allocated lazily, so programs can use widely
//! separated address regions without cost.
//!
//! For fleet sweeps (DESIGN.md §13) a store can additionally be backed by a
//! shared, immutable [`BackingBase`]: reads fall through to the base, and a
//! write materializes a private copy of the touched page first
//! (copy-on-write). Because the timing model never stores data — only tags —
//! sharing the functional image between runs is timing-neutral.

use std::collections::HashMap;
use std::sync::Arc;

const PAGE_BYTES: usize = 4096;
const PAGE_SHIFT: u32 = 12;

type Page = Box<[u8; PAGE_BYTES]>;

/// An immutable, shareable page map published once per dataset and mounted
/// read-only under any number of [`Backing`] stores. Created by
/// [`Backing::freeze`].
#[derive(Clone, Debug, Default)]
pub struct BackingBase {
    pages: HashMap<u64, Page>,
}

impl BackingBase {
    /// Number of pages in the base image.
    pub fn pages(&self) -> usize {
        self.pages.len()
    }
}

/// Sparse, lazily allocated flat memory. All accesses are naturally aligned
/// 32-bit words (the element size of the simulated SIMD ISA).
///
/// Cloning a store deep-copies private pages but shares the base layer, so
/// snapshots of CoW-backed machines stay cheap.
#[derive(Clone, Debug, Default)]
pub struct Backing {
    pages: HashMap<u64, Page>,
    base: Option<Arc<BackingBase>>,
}

impl Backing {
    /// Creates an empty store; reads of untouched memory return zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of private (written or CoW-materialized) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Number of pages in the mounted base layer, if any.
    pub fn base_pages(&self) -> usize {
        self.base.as_ref().map_or(0, |b| b.pages())
    }

    /// Converts this store's private pages into an immutable base image.
    /// The store must not itself have a base mounted (bases don't stack).
    ///
    /// # Panics
    ///
    /// Panics if a base layer is already mounted.
    pub fn freeze(self) -> Arc<BackingBase> {
        assert!(
            self.base.is_none(),
            "freeze: cannot freeze a store that already has a base layer"
        );
        Arc::new(BackingBase { pages: self.pages })
    }

    /// Mounts `base` as the read-only bottom layer. Existing private pages
    /// keep shadowing it.
    pub fn set_base(&mut self, base: Arc<BackingBase>) {
        self.base = Some(base);
    }

    /// Drops all private pages and mounts `base` (or nothing), returning the
    /// store to a pristine image of the base. Allocations of the private
    /// page table are kept for reuse.
    pub fn reset_to(&mut self, base: Option<Arc<BackingBase>>) {
        self.pages.clear();
        self.base = base;
    }

    #[inline]
    fn split(addr: u64) -> (u64, usize) {
        (addr >> PAGE_SHIFT, (addr as usize) & (PAGE_BYTES - 1))
    }

    /// The page to read from: private copy first, then the base layer.
    #[inline]
    fn page(&self, page: u64) -> Option<&Page> {
        self.pages
            .get(&page)
            .or_else(|| self.base.as_ref().and_then(|b| b.pages.get(&page)))
    }

    /// The private page to write to, materializing it from the base layer
    /// (or zeros) on first write.
    #[inline]
    fn page_mut(&mut self, page: u64) -> &mut Page {
        let Self { pages, base } = self;
        pages.entry(page).or_insert_with(|| {
            base.as_ref()
                .and_then(|b| b.pages.get(&page))
                .cloned()
                .unwrap_or_else(|| Box::new([0; PAGE_BYTES]))
        })
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        let (page, off) = Self::split(addr);
        self.page(page).map_or(0, |p| p[off])
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let (page, off) = Self::split(addr);
        self.page_mut(page)[off] = value;
    }

    /// Reads a 32-bit word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-byte aligned (the ISA requires naturally
    /// aligned element accesses).
    pub fn read_u32(&self, addr: u64) -> u32 {
        assert_eq!(addr % 4, 0, "unaligned 32-bit read at {addr:#x}");
        let (page, off) = Self::split(addr);
        match self.page(page) {
            Some(p) => u32::from_le_bytes(p[off..off + 4].try_into().expect("4 bytes")),
            None => 0,
        }
    }

    /// Writes a 32-bit word.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-byte aligned.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        assert_eq!(addr % 4, 0, "unaligned 32-bit write at {addr:#x}");
        let (page, off) = Self::split(addr);
        let p = self.page_mut(page);
        p[off..off + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads a 32-bit float (bit pattern of the word at `addr`).
    pub fn read_f32(&self, addr: u64) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes a 32-bit float.
    pub fn write_f32(&mut self, addr: u64, value: f32) {
        self.write_u32(addr, value.to_bits());
    }

    /// Copies a slice of words into memory starting at `addr`.
    pub fn write_u32_slice(&mut self, addr: u64, values: &[u32]) {
        for (i, v) in values.iter().enumerate() {
            self.write_u32(addr + 4 * i as u64, *v);
        }
    }

    /// Copies a slice of floats into memory starting at `addr`.
    pub fn write_f32_slice(&mut self, addr: u64, values: &[f32]) {
        for (i, v) in values.iter().enumerate() {
            self.write_f32(addr + 4 * i as u64, *v);
        }
    }

    /// Reads `n` consecutive words starting at `addr`.
    pub fn read_u32_vec(&self, addr: u64, n: usize) -> Vec<u32> {
        (0..n).map(|i| self.read_u32(addr + 4 * i as u64)).collect()
    }

    /// Reads `n` consecutive floats starting at `addr`.
    pub fn read_f32_vec(&self, addr: u64, n: usize) -> Vec<f32> {
        (0..n).map(|i| self.read_f32(addr + 4 * i as u64)).collect()
    }
}

// ---- durable-snapshot serialization --------------------------------------

/// Encodes a page map deterministically: page indices sorted ascending
/// (HashMap iteration order must never reach the wire), each followed by
/// its raw 4 KiB payload.
fn encode_pages(pages: &HashMap<u64, Page>, w: &mut glsc_wire::Writer) {
    let mut keys: Vec<u64> = pages.keys().copied().collect();
    keys.sort_unstable();
    w.put_u64(keys.len() as u64);
    for k in keys {
        w.put_u64(k);
        w.put_bytes(&pages[&k][..]);
    }
}

fn decode_pages(r: &mut glsc_wire::Reader<'_>) -> Result<HashMap<u64, Page>, glsc_wire::WireError> {
    let n = r.get_len()?;
    let mut pages = HashMap::with_capacity(n);
    let mut last: Option<u64> = None;
    for _ in 0..n {
        let at = r.pos();
        let k = r.get_u64()?;
        // Strictly ascending keys double as a duplicate check and keep
        // the encoding canonical (one byte string per page map).
        if last.is_some_and(|l| k <= l) {
            return Err(glsc_wire::WireError::Invalid {
                at,
                what: "page index order",
            });
        }
        last = Some(k);
        let bytes = r.take(PAGE_BYTES)?;
        let mut page: Page = Box::new([0; PAGE_BYTES]);
        page.copy_from_slice(bytes);
        pages.insert(k, page);
    }
    Ok(pages)
}

impl glsc_wire::Wire for BackingBase {
    fn encode(&self, w: &mut glsc_wire::Writer) {
        let Self { pages } = self;
        encode_pages(pages, w);
    }
    fn decode(r: &mut glsc_wire::Reader<'_>) -> Result<Self, glsc_wire::WireError> {
        Ok(Self {
            pages: decode_pages(r)?,
        })
    }
}

// The copy-on-write base is serialized by value: on decode it becomes a
// private Arc. Sharing identity is a host-memory optimization invisible
// to simulated behavior, so flattening it through the wire is lossless
// for reports.
impl glsc_wire::Wire for Backing {
    fn encode(&self, w: &mut glsc_wire::Writer) {
        let Self { pages, base } = self;
        encode_pages(pages, w);
        match base {
            None => w.put_u8(0),
            Some(b) => {
                w.put_u8(1);
                b.as_ref().encode(w);
            }
        }
    }
    fn decode(r: &mut glsc_wire::Reader<'_>) -> Result<Self, glsc_wire::WireError> {
        let pages = decode_pages(r)?;
        let at = r.pos();
        let base = match r.get_u8()? {
            0 => None,
            1 => Some(Arc::new(BackingBase::decode(r)?)),
            _ => {
                return Err(glsc_wire::WireError::Invalid {
                    at,
                    what: "backing base tag",
                })
            }
        };
        Ok(Self { pages, base })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let b = Backing::new();
        assert_eq!(b.read_u32(0x1000), 0);
        assert_eq!(b.read_u8(7), 0);
        assert_eq!(b.resident_pages(), 0);
        assert_eq!(b.base_pages(), 0);
    }

    #[test]
    fn read_back_what_was_written() {
        let mut b = Backing::new();
        b.write_u32(0x2000, 0xdead_beef);
        assert_eq!(b.read_u32(0x2000), 0xdead_beef);
        b.write_f32(0x2004, 1.5);
        assert_eq!(b.read_f32(0x2004), 1.5);
        assert_eq!(b.resident_pages(), 1);
    }

    #[test]
    fn pages_are_independent() {
        let mut b = Backing::new();
        b.write_u32(0x0, 1);
        b.write_u32(0x10_0000, 2);
        assert_eq!(b.read_u32(0x0), 1);
        assert_eq!(b.read_u32(0x10_0000), 2);
        assert_eq!(b.resident_pages(), 2);
    }

    #[test]
    fn slice_helpers_round_trip() {
        let mut b = Backing::new();
        b.write_u32_slice(0x3000, &[1, 2, 3, 4]);
        assert_eq!(b.read_u32_vec(0x3000, 4), vec![1, 2, 3, 4]);
        b.write_f32_slice(0x4000, &[0.5, -2.0]);
        assert_eq!(b.read_f32_vec(0x4000, 2), vec![0.5, -2.0]);
    }

    #[test]
    fn word_straddling_page_boundary_is_not_needed_but_bytes_work() {
        let mut b = Backing::new();
        b.write_u8(4095, 0xab);
        b.write_u8(4096, 0xcd);
        assert_eq!(b.read_u8(4095), 0xab);
        assert_eq!(b.read_u8(4096), 0xcd);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_read_panics() {
        let b = Backing::new();
        let _ = b.read_u32(2);
    }

    fn base_with(values: &[(u64, u32)]) -> Arc<BackingBase> {
        let mut b = Backing::new();
        for &(addr, v) in values {
            b.write_u32(addr, v);
        }
        b.freeze()
    }

    #[test]
    fn reads_fall_through_to_base() {
        let base = base_with(&[(0x1000, 7), (0x5000, 9)]);
        let mut b = Backing::new();
        b.set_base(Arc::clone(&base));
        assert_eq!(b.read_u32(0x1000), 7);
        assert_eq!(b.read_u32(0x5000), 9);
        // Untouched addresses inside a base page read the base's zero fill;
        // addresses outside any base page read zero.
        assert_eq!(b.read_u32(0x1004), 0);
        assert_eq!(b.read_u32(0x9000), 0);
        assert_eq!(b.resident_pages(), 0);
        assert_eq!(b.base_pages(), 2);
    }

    #[test]
    fn write_materializes_page_from_base() {
        let base = base_with(&[(0x1000, 7), (0x1004, 8)]);
        let mut b = Backing::new();
        b.set_base(Arc::clone(&base));
        b.write_u32(0x1000, 100);
        // The written word changed; its page neighbor was carried over.
        assert_eq!(b.read_u32(0x1000), 100);
        assert_eq!(b.read_u32(0x1004), 8);
        assert_eq!(b.resident_pages(), 1);
    }

    #[test]
    fn write_isolation_between_stores_sharing_a_base() {
        let base = base_with(&[(0x2000, 42)]);
        let mut m1 = Backing::new();
        let mut m2 = Backing::new();
        m1.set_base(Arc::clone(&base));
        m2.set_base(Arc::clone(&base));
        m1.write_u32(0x2000, 1);
        m2.write_u32(0x2000, 2);
        assert_eq!(m1.read_u32(0x2000), 1);
        assert_eq!(m2.read_u32(0x2000), 2);
        // A third mount still sees the pristine base.
        let mut m3 = Backing::new();
        m3.set_base(base);
        assert_eq!(m3.read_u32(0x2000), 42);
    }

    #[test]
    fn write_off_base_materializes_zero_page() {
        let base = base_with(&[(0x1000, 7)]);
        let mut b = Backing::new();
        b.set_base(base);
        b.write_u8(0x8001, 0xee);
        assert_eq!(b.read_u8(0x8001), 0xee);
        assert_eq!(b.read_u8(0x8000), 0);
        assert_eq!(b.resident_pages(), 1);
    }

    #[test]
    fn reset_to_returns_to_pristine_base() {
        let base = base_with(&[(0x3000, 5)]);
        let mut b = Backing::new();
        b.set_base(Arc::clone(&base));
        b.write_u32(0x3000, 99);
        b.write_u32(0x7000, 1);
        assert_eq!(b.resident_pages(), 2);
        b.reset_to(Some(base));
        assert_eq!(b.read_u32(0x3000), 5);
        assert_eq!(b.read_u32(0x7000), 0);
        assert_eq!(b.resident_pages(), 0);
        b.reset_to(None);
        assert_eq!(b.read_u32(0x3000), 0);
        assert_eq!(b.base_pages(), 0);
    }

    #[test]
    fn clone_shares_base_but_copies_private_pages() {
        let base = base_with(&[(0x1000, 7)]);
        let mut b = Backing::new();
        b.set_base(base);
        b.write_u32(0x1000, 8);
        let mut c = b.clone();
        c.write_u32(0x1000, 9);
        assert_eq!(b.read_u32(0x1000), 8);
        assert_eq!(c.read_u32(0x1000), 9);
    }

    #[test]
    fn byte_reads_fall_through_to_base() {
        let base = base_with(&[(0x1000, 0x0403_0201)]);
        let mut b = Backing::new();
        b.set_base(base);
        assert_eq!(b.read_u8(0x1000), 0x01);
        assert_eq!(b.read_u8(0x1003), 0x04);
    }

    #[test]
    #[should_panic(expected = "freeze")]
    fn freeze_rejects_stacked_bases() {
        let base = base_with(&[(0x1000, 1)]);
        let mut b = Backing::new();
        b.set_base(base);
        let _ = b.freeze();
    }
}
