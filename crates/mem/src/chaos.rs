//! Deterministic fault injection for the memory system.
//!
//! §3.2 of the paper requires GLSC to stay *correct* (atomic, and making
//! forward progress) while reservations are destroyed underneath it by
//! hostile-but-legal events: conflicting writes from other threads,
//! context switches that flush reservation state, cache-line evictions,
//! and prefetch interference. §3.3's fully-associative reservation buffer
//! adds a capacity-overflow destruction path. This module turns those
//! events into *injectable faults* so tests can drive the protocol far
//! off the happy path and then check the atomicity oracle (results still
//! match the scalar reference) and forward progress (the run terminates).
//!
//! Every fault is **destructive-only**: faults clear reservations, evict
//! lines, or delay fills — they never *grant* a reservation a thread did
//! not earn. §3 explicitly allows spurious reservation loss (the software
//! retry loop absorbs it); spurious reservation *gain* would let an `sc`
//! or `vscattercond` element commit without a live link and break
//! atomicity, so no such fault exists here.
//!
//! The plan is driven by the workspace's deterministic [`glsc_rng`]
//! generator, so a `(seed, workload)` pair replays the exact same fault
//! sequence on every run and platform. With no [`FaultPlan`] installed
//! the memory system takes a single `Option::is_some` branch per access
//! and is otherwise byte-for-byte identical to the fault-free build.
//!
//! | Fault | Models (paper) |
//! |-------|----------------|
//! | [`ChaosStats::reservations_cleared`] | §3.2 conflicting write killing one line's links |
//! | [`ChaosStats::core_flushes`] | §3.2 context switch flushing a core's reservation state |
//! | [`ChaosStats::lines_evicted`] | §3.2 eviction / prefetch displacing a reserved line |
//! | [`ChaosStats::jitter_cycles`] | DRAM timing variation reordering fill completions |
//! | [`ChaosStats::forced_buffer_evictions`] | §3.3 reservation-buffer capacity overflow |

use glsc_rng::rngs::StdRng;
use glsc_rng::SeedableRng;

/// Tuning knobs for a [`FaultPlan`]. All probabilities are evaluated at
/// *injection points* — every [`period`](ChaosConfig::period)-th accepted
/// L1 access — and each fault kind is rolled independently, so several
/// faults can land on the same injection point.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosConfig {
    /// Seed for the plan's private RNG; the entire fault sequence is a
    /// pure function of this seed and the access stream.
    pub seed: u64,
    /// An injection point occurs every `period` accepted L1 accesses
    /// (minimum 1 = every access).
    pub period: u64,
    /// Probability of clearing every reservation on one randomly chosen
    /// reserved line of a random core (a conflicting write, §3.2).
    pub clear_line_prob: f64,
    /// Probability of clearing *all* reservations of a random core (a
    /// context-switch flush, §3.2).
    pub flush_core_prob: f64,
    /// Probability of force-evicting one random resident L1 line of a
    /// random core, with full directory bookkeeping (capacity/prefetch
    /// displacement, §3.2).
    pub evict_line_prob: f64,
    /// Probability of scheduling extra DRAM latency for the next L2 miss.
    pub dram_jitter_prob: f64,
    /// Maximum extra DRAM cycles per jitter event (uniform in
    /// `1..=dram_jitter_max`; 0 disables jitter entirely).
    pub dram_jitter_max: u64,
    /// Probability of force-evicting the oldest entry of a random core's
    /// §3.3 reservation buffer (capacity-overflow pressure; no-op in
    /// per-line-tag mode).
    pub buffer_pressure_prob: f64,
    /// Probability of delaying the next interconnect message's departure
    /// (fabric arbitration jitter; destructive-only — it delays, never
    /// reorders or drops).
    pub link_jitter_prob: f64,
    /// Maximum extra cycles per link-jitter event (uniform in
    /// `1..=link_jitter_max`; 0 disables link jitter entirely).
    pub link_jitter_max: u64,
}

impl ChaosConfig {
    /// A moderate all-fault plan derived from `seed`: frequent enough to
    /// perturb every kernel's atomic phase, gentle enough that retry
    /// loops still converge quickly.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            seed,
            period: 5,
            clear_line_prob: 0.25,
            flush_core_prob: 0.05,
            evict_line_prob: 0.20,
            dram_jitter_prob: 0.30,
            dram_jitter_max: 48,
            buffer_pressure_prob: 0.25,
            link_jitter_prob: 0.20,
            link_jitter_max: 8,
        }
    }

    /// An aggressive plan for stress tests: injection on every access and
    /// high fault rates. Retry loops still converge (the RNG re-rolls
    /// every attempt) but sc/element failure rates become large.
    pub fn aggressive(seed: u64) -> Self {
        Self {
            seed,
            period: 1,
            clear_line_prob: 0.5,
            flush_core_prob: 0.10,
            evict_line_prob: 0.35,
            dram_jitter_prob: 0.5,
            dram_jitter_max: 128,
            buffer_pressure_prob: 0.5,
            link_jitter_prob: 0.4,
            link_jitter_max: 32,
        }
    }
}

/// Counters of the faults a [`FaultPlan`] actually injected. Tests use
/// these to prove the perturbation was real (a chaos run that injected
/// nothing proves nothing).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Injection points reached (every `period`-th access).
    pub injection_points: u64,
    /// Single-line reservation clears performed.
    pub reservations_cleared: u64,
    /// Whole-core reservation flushes performed.
    pub core_flushes: u64,
    /// L1 lines force-evicted.
    pub lines_evicted: u64,
    /// DRAM jitter events scheduled.
    pub jitter_events: u64,
    /// Total extra DRAM cycles scheduled across all jitter events.
    pub jitter_cycles: u64,
    /// Oldest-entry evictions forced on §3.3 reservation buffers.
    pub forced_buffer_evictions: u64,
    /// Interconnect link-jitter events scheduled.
    pub link_jitter_events: u64,
    /// Total extra departure-delay cycles across all link-jitter events.
    pub link_jitter_cycles: u64,
}

impl ChaosStats {
    /// Total state-destroying faults injected (jitter excluded: it delays
    /// but destroys nothing).
    pub fn total_destructive(&self) -> u64 {
        self.reservations_cleared
            + self.core_flushes
            + self.lines_evicted
            + self.forced_buffer_evictions
    }

    /// Total faults of any kind.
    pub fn total_faults(&self) -> u64 {
        self.total_destructive() + self.jitter_events + self.link_jitter_events
    }
}

/// A live, seeded fault-injection plan. Install into a memory system with
/// [`MemorySystem::install_fault_plan`](crate::MemorySystem::install_fault_plan);
/// the system consults it on every accepted L1 access.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    pub(crate) cfg: ChaosConfig,
    pub(crate) rng: StdRng,
    pub(crate) accesses: u64,
    pub(crate) stats: ChaosStats,
}

impl FaultPlan {
    /// Builds a plan from its configuration. `period` is clamped to at
    /// least 1.
    pub fn new(mut cfg: ChaosConfig) -> Self {
        cfg.period = cfg.period.max(1);
        let rng = StdRng::seed_from_u64(cfg.seed);
        Self {
            cfg,
            rng,
            accesses: 0,
            stats: ChaosStats::default(),
        }
    }

    /// Shorthand for `FaultPlan::new(ChaosConfig::from_seed(seed))`.
    pub fn from_seed(seed: u64) -> Self {
        Self::new(ChaosConfig::from_seed(seed))
    }

    /// The configuration in effect.
    pub fn cfg(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// Faults injected so far.
    pub fn stats(&self) -> &ChaosStats {
        &self.stats
    }

    /// Accepted L1 accesses observed so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_seed_is_deterministic() {
        let a = FaultPlan::from_seed(7);
        let b = FaultPlan::from_seed(7);
        assert_eq!(a.cfg(), b.cfg());
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn period_clamped_to_one() {
        let plan = FaultPlan::new(ChaosConfig {
            period: 0,
            ..ChaosConfig::from_seed(0)
        });
        assert_eq!(plan.cfg().period, 1);
    }

    #[test]
    fn stats_totals() {
        let s = ChaosStats {
            reservations_cleared: 2,
            core_flushes: 1,
            lines_evicted: 3,
            jitter_events: 4,
            forced_buffer_evictions: 5,
            link_jitter_events: 6,
            ..ChaosStats::default()
        };
        assert_eq!(s.total_destructive(), 11);
        assert_eq!(s.total_faults(), 21);
    }
}

// ---- durable-snapshot serialization --------------------------------------

glsc_wire::wire_struct!(ChaosConfig {
    seed,
    period,
    clear_line_prob,
    flush_core_prob,
    evict_line_prob,
    dram_jitter_prob,
    dram_jitter_max,
    buffer_pressure_prob,
    link_jitter_prob,
    link_jitter_max,
});
glsc_wire::wire_struct!(ChaosStats {
    injection_points,
    reservations_cleared,
    core_flushes,
    lines_evicted,
    jitter_events,
    jitter_cycles,
    forced_buffer_evictions,
    link_jitter_events,
    link_jitter_cycles,
});

// The RNG travels as its raw xoshiro state words: a resumed fault plan
// must draw the exact tail of the sequence the interrupted plan would
// have drawn, or chaos counters diverge from the uninterrupted run.
impl glsc_wire::Wire for FaultPlan {
    fn encode(&self, w: &mut glsc_wire::Writer) {
        let Self {
            cfg,
            rng,
            accesses,
            stats,
        } = self;
        cfg.encode(w);
        rng.state().encode(w);
        accesses.encode(w);
        stats.encode(w);
    }
    fn decode(r: &mut glsc_wire::Reader<'_>) -> Result<Self, glsc_wire::WireError> {
        use glsc_wire::Wire;
        Ok(Self {
            cfg: Wire::decode(r)?,
            rng: StdRng::from_state(Wire::decode(r)?),
            accesses: Wire::decode(r)?,
            stats: Wire::decode(r)?,
        })
    }
}
