//! Reservation arbitration policies (DESIGN.md §12).
//!
//! The paper's GLSC design inherits ll/sc's weakest property: under
//! contention a scatter-conditional can fail indefinitely, because any
//! committed store to a line — including a *competing* thread's winning
//! `vscattercond` — kills every reservation on it (§3.2). The baseline
//! simulator arbitrates nothing: whichever thread's store-conditional
//! reaches the L1 port first wins, forever. This module adds two
//! hardware-side arbitration policies on top of that free-for-all,
//! selected per run via [`MemConfig::arbitration`](crate::MemConfig):
//!
//! * [`ArbitrationPolicy::Free`] — the historical behavior and the
//!   default. Byte-identical to the pre-arbitration simulator (pinned by
//!   the goldens differential).
//! * [`ArbitrationPolicy::NackHoldoff`] — a losing SC is NACKed and the
//!   line refuses *re-reservation by that loser* for a fixed window of
//!   cycles. The loser's `vgatherlink`/`ll` still returns data (loads are
//!   never blocked) but acquires no reservation, so its next SC fails
//!   cheaply at the port instead of stealing the line from the winner.
//!   This derates the retry storm without any notion of priority. An
//!   expired holdoff leaves a *re-arm grace* of one further window during
//!   which the loser's failures do not re-arm it: without the grace, a
//!   retry loop whose load-linked always lands inside the window would
//!   NACK itself forever (the post-expiry SC fails for want of a link and
//!   immediately opens a fresh window — a self-inflicted livelock the
//!   deterministic machine can never escape).
//! * [`ArbitrationPolicy::AgedPriority`] — reservations carry an age: the
//!   cycle the holder's current failure streak on the line began. A
//!   thread whose SC would commit on a line on which an *older* streak is
//!   active is refused (its own reservation stays intact); the oldest
//!   contender is never refused, so it commits on its next attempt and
//!   retires its streak. Ages are totally ordered by `(start cycle,
//!   global thread id)`, which bounds every thread's consecutive-failure
//!   run under contention — even when seeded chaos bursts keep killing
//!   reservations, the streak book survives (it lives here, not in the
//!   L1), so a victim's age keeps ratcheting it toward the front.
//!   Crucially, only a *genuine* loss — the reservation was killed by
//!   another thread's committed store, i.e. somebody made progress —
//!   opens a streak. A refusal does not: it would grant unearned age,
//!   and with several lock words per cache line a two-phase lock
//!   protocol then refuses itself in a perfect alternating livelock
//!   (each side's first-lock commit retires the streak it needs for its
//!   second lock).
//!
//! The [`Arbiter`] is deliberately *not* part of [`MemStats`]: resetting
//! statistics must never change timing. It is plain owned data inside
//! [`MemorySystem`](crate::MemorySystem), so machine snapshots cover it
//! for free.
//!
//! [`MemStats`]: crate::MemStats

/// Which reservation-arbitration policy the memory system applies to
/// store-conditionals and reservation acquisition. See the module docs
/// for the semantics of each variant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ArbitrationPolicy {
    /// First-committer-wins free-for-all (the paper's implicit policy and
    /// the default; byte-identical to the pre-arbitration simulator).
    #[default]
    Free,
    /// Losing SCs are NACKed: the loser cannot re-reserve the line for
    /// `window` cycles after a failed store-conditional, then gets one
    /// window of re-arm grace in which further failures do not re-NACK it.
    NackHoldoff {
        /// Holdoff length in cycles (must be non-zero).
        window: u64,
    },
    /// Age-ordered priority: an older failure streak on a line refuses
    /// younger committers, bounding per-thread consecutive SC failures.
    AgedPriority,
}

impl ArbitrationPolicy {
    /// Short lowercase label for figure output and job-store keys.
    pub fn label(&self) -> &'static str {
        match self {
            ArbitrationPolicy::Free => "free",
            ArbitrationPolicy::NackHoldoff { .. } => "nack",
            ArbitrationPolicy::AgedPriority => "aged",
        }
    }
}

/// One armed NACK holdoff: `(core, tid)` may not re-reserve `line` while
/// `now < until`, and further failures do not re-arm the entry until
/// `rearm_at` — the grace in which the loser re-links and attempts at
/// full speed (see the module docs for why the grace is load-bearing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Holdoff {
    core: usize,
    tid: u8,
    line: u64,
    until: u64,
    rearm_at: u64,
}

/// One active failure streak: global thread `gid`'s store-conditionals on
/// `line` have been failing since cycle `start`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Streak {
    gid: usize,
    line: u64,
    start: u64,
}

/// Runtime state of the active arbitration policy. Owned by
/// [`MemorySystem`](crate::MemorySystem) (hence snapshot-covered); empty
/// and untouched under [`ArbitrationPolicy::Free`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Arbiter {
    /// Armed NACK holdoffs (NackHoldoff only). Expired entries are pruned
    /// on every consult, keeping the vector small and the state
    /// insensitive to *when* it is observed.
    holdoffs: Vec<Holdoff>,
    /// Active failure streaks (AgedPriority only), at most one per
    /// `(gid, line)` pair.
    streaks: Vec<Streak>,
}

impl Arbiter {
    /// Drops every holdoff whose grace has also passed by cycle `now`.
    fn prune_holdoffs(&mut self, now: u64) {
        self.holdoffs.retain(|h| h.rearm_at > now);
    }

    /// Whether `(core, tid)` is currently held off from reserving `line`.
    /// Prunes spent entries first so the answer is purely a function of
    /// `(state, now)`. An entry inside its re-arm grace (`until <= now <
    /// rearm_at`) no longer blocks.
    pub fn in_holdoff(&mut self, core: usize, tid: u8, line: u64, now: u64) -> bool {
        self.prune_holdoffs(now);
        self.holdoffs
            .iter()
            .any(|h| h.core == core && h.tid == tid && h.line == line && now < h.until)
    }

    /// Arms a holdoff forbidding `(core, tid)` from re-reserving `line`
    /// until `now + window`. An existing entry for the same key — still
    /// blocking *or* inside its re-arm grace — is left untouched: a
    /// thread slamming SCs into a line it cannot reserve must not keep
    /// extending (or, post-expiry, instantly re-opening) its own penalty
    /// window.
    pub fn arm_holdoff(&mut self, core: usize, tid: u8, line: u64, now: u64, window: u64) {
        self.prune_holdoffs(now);
        if self
            .holdoffs
            .iter()
            .any(|h| h.core == core && h.tid == tid && h.line == line)
        {
            return;
        }
        let until = now.saturating_add(window);
        self.holdoffs.push(Holdoff {
            core,
            tid,
            line,
            until,
            rearm_at: until.saturating_add(window),
        });
    }

    /// Whether global thread `gid`'s otherwise-committable SC on `line`
    /// must be refused because a strictly older streak is active on the
    /// line. `gid`'s own priority is its existing streak's start (it has
    /// been waiting since then) or `now` if it has none; ties break toward
    /// the lower thread id, making the order total and the refusal
    /// relation acyclic — the oldest contender is never refused.
    pub fn must_refuse(&self, gid: usize, line: u64, now: u64) -> bool {
        let own = self
            .streaks
            .iter()
            .find(|s| s.gid == gid && s.line == line)
            .map_or(now, |s| s.start);
        self.streaks
            .iter()
            .any(|s| s.line == line && s.gid != gid && (s.start, s.gid) < (own, gid))
    }

    /// Records a failed SC by `gid` on `line` at `now`: opens a streak if
    /// none is active (an existing streak keeps its original, older
    /// start).
    pub fn note_failure(&mut self, gid: usize, line: u64, now: u64) {
        if self.streaks.iter().any(|s| s.gid == gid && s.line == line) {
            return;
        }
        self.streaks.push(Streak {
            gid,
            line,
            start: now,
        });
    }

    /// Records a committed SC by `gid` on `line`: retires its streak.
    pub fn note_success(&mut self, gid: usize, line: u64) {
        self.streaks.retain(|s| !(s.gid == gid && s.line == line));
    }

    /// Whether the arbiter holds no state (true for the whole lifetime of
    /// a `Free` run).
    pub fn is_idle(&self) -> bool {
        self.holdoffs.is_empty() && self.streaks.is_empty()
    }

    /// Active streaks as `(gid, line, start)` tuples, for diagnostics.
    pub fn streak_entries(&self) -> Vec<(usize, u64, u64)> {
        self.streaks
            .iter()
            .map(|s| (s.gid, s.line, s.start))
            .collect()
    }

    /// Armed holdoffs as `(core, tid, line, until)` tuples, for
    /// diagnostics. Does not prune: pass the caller's `now` to
    /// [`Arbiter::in_holdoff`] for a liveness-filtered answer.
    pub fn holdoff_entries(&self) -> Vec<(usize, u8, u64, u64)> {
        self.holdoffs
            .iter()
            .map(|h| (h.core, h.tid, h.line, h.until))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_free() {
        assert_eq!(ArbitrationPolicy::default(), ArbitrationPolicy::Free);
        assert_eq!(ArbitrationPolicy::Free.label(), "free");
        assert_eq!(ArbitrationPolicy::NackHoldoff { window: 8 }.label(), "nack");
        assert_eq!(ArbitrationPolicy::AgedPriority.label(), "aged");
    }

    #[test]
    fn holdoff_expires_and_does_not_extend() {
        let mut a = Arbiter::default();
        a.arm_holdoff(0, 1, 0x40, 100, 10);
        assert!(a.in_holdoff(0, 1, 0x40, 100));
        assert!(a.in_holdoff(0, 1, 0x40, 109));
        // Re-arming mid-window must not push the expiry out.
        a.arm_holdoff(0, 1, 0x40, 105, 10);
        assert!(!a.in_holdoff(0, 1, 0x40, 110));
        // Other keys are unaffected.
        a.arm_holdoff(0, 1, 0x40, 200, 10);
        assert!(!a.in_holdoff(0, 0, 0x40, 200));
        assert!(!a.in_holdoff(1, 1, 0x40, 200));
        assert!(!a.in_holdoff(0, 1, 0x80, 200));
    }

    #[test]
    fn rearm_grace_blocks_self_inflicted_renack() {
        let mut a = Arbiter::default();
        a.arm_holdoff(0, 1, 0x40, 100, 10);
        // Window [100, 110): blocking. Grace [110, 120): open, but a
        // failure right after expiry must not re-open the window.
        assert!(!a.in_holdoff(0, 1, 0x40, 110));
        a.arm_holdoff(0, 1, 0x40, 111, 10);
        assert!(!a.in_holdoff(0, 1, 0x40, 112), "grace defeated");
        assert!(!a.is_idle(), "graced entry still on the books");
        // Once the grace passes, the entry is gone and arming works again.
        a.arm_holdoff(0, 1, 0x40, 120, 10);
        assert!(a.in_holdoff(0, 1, 0x40, 125));
        assert!(!a.in_holdoff(0, 1, 0x40, 140));
        a.prune_holdoffs(140);
        assert!(a.is_idle());
    }

    #[test]
    fn oldest_streak_is_never_refused() {
        let mut a = Arbiter::default();
        a.note_failure(3, 0x40, 50);
        a.note_failure(1, 0x40, 60);
        // gid 3 opened first: it commits, everyone else waits.
        assert!(!a.must_refuse(3, 0x40, 70));
        assert!(a.must_refuse(1, 0x40, 70));
        // gid 7 has no streak yet -> its age is `now`, the youngest.
        assert!(a.must_refuse(7, 0x40, 70));
        // A different line is free-for-all.
        assert!(!a.must_refuse(1, 0x80, 70));
        // Once the elder commits, the next-oldest takes over.
        a.note_success(3, 0x40);
        assert!(!a.must_refuse(1, 0x40, 70));
        assert!(a.must_refuse(7, 0x40, 70));
        a.note_success(1, 0x40);
        assert!(a.is_idle());
    }

    #[test]
    fn streak_start_is_sticky_and_ties_break_by_gid() {
        let mut a = Arbiter::default();
        a.note_failure(2, 0x40, 10);
        a.note_failure(2, 0x40, 99); // keeps start = 10
        assert_eq!(a.streak_entries(), vec![(2, 0x40, 10)]);
        a.note_failure(1, 0x40, 10); // same age, lower gid wins
        assert!(!a.must_refuse(1, 0x40, 10));
        assert!(a.must_refuse(2, 0x40, 10));
    }
}

// ---- durable-snapshot serialization --------------------------------------

impl glsc_wire::Wire for ArbitrationPolicy {
    fn encode(&self, w: &mut glsc_wire::Writer) {
        match self {
            ArbitrationPolicy::Free => w.put_u8(0),
            ArbitrationPolicy::NackHoldoff { window } => {
                w.put_u8(1);
                window.encode(w);
            }
            ArbitrationPolicy::AgedPriority => w.put_u8(2),
        }
    }
    fn decode(r: &mut glsc_wire::Reader<'_>) -> Result<Self, glsc_wire::WireError> {
        let at = r.pos();
        match r.get_u8()? {
            0 => Ok(ArbitrationPolicy::Free),
            1 => Ok(ArbitrationPolicy::NackHoldoff {
                window: glsc_wire::Wire::decode(r)?,
            }),
            2 => Ok(ArbitrationPolicy::AgedPriority),
            _ => Err(glsc_wire::WireError::Invalid {
                at,
                what: "ArbitrationPolicy tag",
            }),
        }
    }
}

glsc_wire::wire_struct!(Holdoff {
    core,
    tid,
    line,
    until,
    rearm_at,
});
glsc_wire::wire_struct!(Streak { gid, line, start });
glsc_wire::wire_struct!(Arbiter { holdoffs, streaks });
