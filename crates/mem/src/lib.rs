//! # glsc-mem — memory hierarchy of the simulated CMP
//!
//! Models the memory system of the baseline architecture in *Atomic Vector
//! Operations on Chip Multiprocessors* (ISCA 2008, §2 and Table 1):
//!
//! * a sparse **backing store** holding the actual data values
//!   ([`Backing`]),
//! * per-core private **L1 data caches** (32 KB, 4-way, 64 B lines, 3-cycle
//!   hits) whose tag entries carry the **GLSC reservation** extension of
//!   §3.3 (a valid bit plus an SMT thread id per line),
//! * a shared, inclusive, physically banked **L2** (16 MB, 8-way, 16 banks,
//!   12-cycle minimum latency) holding per-line **directory** state for an
//!   MSI protocol,
//! * a fixed-latency **DRAM** model (280 cycles),
//! * a per-core **stride prefetcher** on the L1 (§4.1),
//! * an explicit **on-die interconnect** ([`Noc`]) between the L1s and the
//!   L2 banks carrying typed coherence messages ([`MsgClass`]) over a
//!   configurable topology ([`Topology`]); the default ideal fabric
//!   reproduces the historical fixed-latency timing exactly.
//!
//! The central type is [`MemorySystem`]: callers (the LSU and GSU models in
//! `glsc-core`) submit one line-granular request per L1 port grant via
//! [`MemorySystem::access`], which returns the request's completion cycle
//! and — for store-conditional requests — whether the line reservation was
//! still held (the paper's GLSC entry check).
//!
//! ## Fidelity notes
//!
//! Data and timing are split: caches track tags, coherence state, LRU and
//! reservations, while values live in the [`Backing`] store and are read or
//! written by the caller at commit time. Request latency is computed when
//! the request is accepted and directory state mutates at that instant;
//! subsequent accesses to an in-flight line complete no earlier than its
//! fill (`ready_at`), which yields natural miss combining.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arbitration;
mod backing;
mod chaos;
mod config;
mod errors;
mod l1;
mod l2;
mod noc;
mod occupancy;
mod oracle;
mod ordering;
mod prefetch;
mod stats;
mod system;
mod tags;

pub use arbitration::{Arbiter, ArbitrationPolicy};
pub use backing::{Backing, BackingBase};
pub use chaos::{ChaosConfig, ChaosStats, FaultPlan};
pub use config::MemConfig;
pub use errors::{ConfigError, InvariantViolation};
pub use l1::{L1Cache, L1State, LinePayload};
pub use l2::{L2Bank, L2Payload};
pub use noc::{MsgClass, Noc, NocConfig, NocStats, Topology};
pub use occupancy::BusyHorizon;
pub use oracle::{AtomicityOracle, AtomicityViolation, OracleStats};
pub use ordering::{MemoryOrder, ParseMemoryOrderError};
pub use prefetch::StridePrefetcher;
pub use stats::{MemStats, ThreadScStats};
pub use system::{AccessResult, MemOp, MemSnapshot, MemorySystem};
pub use tags::TagArray;

/// Returns the line-aligned address containing `addr`.
#[inline]
pub fn line_of(addr: u64, line_bytes: u64) -> u64 {
    debug_assert!(line_bytes.is_power_of_two());
    addr & !(line_bytes - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_of_masks_low_bits() {
        assert_eq!(line_of(0, 64), 0);
        assert_eq!(line_of(63, 64), 0);
        assert_eq!(line_of(64, 64), 64);
        assert_eq!(line_of(0x12345, 64), 0x12340);
    }
}
