//! Typed error values for configuration validation and coherence
//! invariant checking.
//!
//! Historically both were `panic!`/`assert!`s inside [`MemorySystem`] and
//! [`MemConfig`]; the fault-injection work (DESIGN.md §9) turned them into
//! values so the simulator can surface a structured diagnostic instead of
//! aborting the process, and so tests can assert on the *kind* of
//! violation.
//!
//! [`MemorySystem`]: crate::MemorySystem
//! [`MemConfig`]: crate::MemConfig

use std::error::Error;
use std::fmt;

/// A rejected memory-system or machine-shape parameter.
///
/// Produced by [`MemConfig::check`](crate::MemConfig::check) and
/// [`MemorySystem::try_new`](crate::MemorySystem::try_new).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `line_bytes` is not a power of two.
    LineBytesNotPowerOfTwo {
        /// The offending line size.
        line_bytes: u64,
    },
    /// L1 or L2 associativity is zero.
    ZeroAssociativity,
    /// `l2_banks` is zero.
    NoBanks,
    /// L1 capacity does not divide into whole sets.
    L1NotSetDivisible {
        /// Configured L1 capacity in bytes.
        l1_bytes: u64,
        /// Configured line size in bytes.
        line_bytes: u64,
        /// Configured associativity.
        assoc: usize,
    },
    /// The L1 would have zero sets.
    NoL1Sets,
    /// Each L2 bank would have zero sets.
    NoL2Sets,
    /// The §3.3 reservation buffer was requested with zero entries.
    ZeroBufferEntries,
    /// The NACK-holdoff arbitration policy was configured with a zero
    /// window (use [`ArbitrationPolicy::Free`](crate::ArbitrationPolicy)
    /// for no holdoff instead).
    ZeroHoldoffWindow,
    /// Core count outside the supported 1..=32 range (the directory's
    /// sharer vector is a `u32` bitmask).
    CoresOutOfRange {
        /// The offending core count.
        cores: usize,
    },
    /// SMT thread count per core is zero (or beyond the 8-bit reservation
    /// mask when checked by the machine layer).
    ThreadsPerCoreOutOfRange {
        /// The offending thread count.
        threads_per_core: usize,
    },
    /// A non-ideal NoC topology was configured with zero per-hop latency.
    NocZeroLinkLatency,
    /// A non-ideal NoC topology was configured with zero link occupancy
    /// (infinite bandwidth — use [`Topology::Ideal`](crate::Topology)
    /// for the contention-free fabric instead).
    NocZeroLinkBandwidth,
    /// The NoC declared an explicit stop count of zero — a fabric with no
    /// links.
    NocZeroNodes,
    /// The NoC's declared stop count does not match the actual fabric
    /// shape (`cores + l2_banks`) — usually a bank-count mismatch between
    /// a hand-written fabric description and the cache configuration.
    NocNodeCountMismatch {
        /// The stop count declared in [`NocConfig`](crate::NocConfig).
        declared: usize,
        /// The core count the memory system was built with.
        cores: usize,
        /// The configured L2 bank count.
        banks: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::LineBytesNotPowerOfTwo { line_bytes } => {
                write!(f, "line size must be a power of two (got {line_bytes})")
            }
            ConfigError::ZeroAssociativity => write!(f, "associativity must be non-zero"),
            ConfigError::NoBanks => write!(f, "need at least one L2 bank"),
            ConfigError::L1NotSetDivisible {
                l1_bytes,
                line_bytes,
                assoc,
            } => write!(
                f,
                "L1 capacity must divide into sets \
                 ({l1_bytes} B / ({line_bytes} B x {assoc} ways))"
            ),
            ConfigError::NoL1Sets => write!(f, "L1 must have at least one set"),
            ConfigError::NoL2Sets => write!(f, "L2 banks must have at least one set"),
            ConfigError::ZeroBufferEntries => {
                write!(f, "GLSC reservation buffer needs at least one entry")
            }
            ConfigError::ZeroHoldoffWindow => {
                write!(
                    f,
                    "NACK-holdoff arbitration needs a non-zero window (use the Free \
                     policy for no holdoff)"
                )
            }
            ConfigError::CoresOutOfRange { cores } => {
                write!(f, "1..=32 cores supported (got {cores})")
            }
            ConfigError::ThreadsPerCoreOutOfRange { threads_per_core } => {
                write!(
                    f,
                    "need at least one thread per core (1..=8, got {threads_per_core})"
                )
            }
            ConfigError::NocZeroLinkLatency => {
                write!(f, "non-ideal NoC links need a non-zero per-hop latency")
            }
            ConfigError::NocZeroLinkBandwidth => {
                write!(
                    f,
                    "non-ideal NoC links need a non-zero occupancy (use the Ideal \
                     topology for an infinite-bandwidth fabric)"
                )
            }
            ConfigError::NocZeroNodes => {
                write!(f, "NoC declared zero stops (a fabric with no links)")
            }
            ConfigError::NocNodeCountMismatch {
                declared,
                cores,
                banks,
            } => write!(
                f,
                "NoC declares {declared} stop(s) but the fabric has {cores} core(s) + \
                 {banks} L2 bank(s) = {} stops",
                cores + banks
            ),
        }
    }
}

impl Error for ConfigError {}

/// A violated coherence invariant, found by
/// [`MemorySystem::try_check_invariants`].
///
/// Each variant names the line, the core(s) involved, and the directory
/// state observed, so a failing chaos run can be diagnosed from the error
/// alone.
///
/// [`MemorySystem::try_check_invariants`]: crate::MemorySystem::try_check_invariants
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InvariantViolation {
    /// An L1 holds a line the inclusive L2 does not (inclusion broken).
    Inclusion {
        /// The L1's core id.
        core: usize,
        /// The orphaned line address.
        line: u64,
    },
    /// An L1 holds a line Modified but the directory names a different
    /// owner (single-writer broken).
    OwnerMismatch {
        /// The core holding the line Modified.
        core: usize,
        /// The line address.
        line: u64,
        /// The owner the directory recorded instead.
        directory_owner: Option<u8>,
    },
    /// An L1 holds a line Shared but is missing from the directory's
    /// sharer vector.
    MissingSharer {
        /// The core holding the line Shared.
        core: usize,
        /// The line address.
        line: u64,
        /// The directory's sharer bitmask.
        sharers: u32,
    },
    /// The directory records an owner while also recording sharers
    /// (Modified must be exclusive).
    OwnedWithSharers {
        /// The recorded owner.
        owner: u8,
        /// The line address.
        line: u64,
        /// The non-empty sharer bitmask.
        sharers: u32,
    },
    /// The directory records an owner whose L1 does not actually hold the
    /// line Modified.
    OwnerNotModified {
        /// The recorded owner.
        owner: u8,
        /// The line address.
        line: u64,
    },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::Inclusion { core, line } => {
                write!(f, "inclusion violated: L1 {core} holds {line:#x} not in L2")
            }
            InvariantViolation::OwnerMismatch {
                core,
                line,
                directory_owner,
            } => write!(
                f,
                "L1 {core} has {line:#x} Modified but directory owner is {directory_owner:?}"
            ),
            InvariantViolation::MissingSharer {
                core,
                line,
                sharers,
            } => write!(
                f,
                "L1 {core} has {line:#x} Shared but is not a directory sharer \
                 (sharers {sharers:#x})"
            ),
            InvariantViolation::OwnedWithSharers {
                owner,
                line,
                sharers,
            } => write!(
                f,
                "owned line {line:#x} (owner {owner}) must have no sharers \
                 (sharers {sharers:#x})"
            ),
            InvariantViolation::OwnerNotModified { owner, line } => {
                write!(
                    f,
                    "directory owner {owner} does not hold {line:#x} Modified"
                )
            }
        }
    }
}

impl Error for InvariantViolation {}
