//! Generic set-associative tag array with LRU replacement.
//!
//! Used for both the L1 caches (payload: coherence state + GLSC
//! reservation) and the L2 banks (payload: directory state). Only tags are
//! stored — data lives in [`crate::Backing`].

/// A set-associative array of cache tags with true-LRU replacement.
#[derive(Clone, Debug)]
pub struct TagArray<P> {
    sets: Vec<Vec<Slot<P>>>,
    assoc: usize,
    line_bytes: u64,
    stamp: u64,
    /// Indices of sets that went empty → non-empty since the last
    /// [`clear`](TagArray::clear), so `clear` walks only the sets a run
    /// actually used (a short run on a big array touches a handful of
    /// its tens of thousands of sets — the fleet engine resets machines
    /// between jobs on exactly that path). May hold duplicates; bounded
    /// by `dirty_all`.
    touched: Vec<u32>,
    /// Set when the touch log would outgrow the set count; `clear` then
    /// walks every set, as before the log existed.
    dirty_all: bool,
}

#[derive(Clone, Debug)]
struct Slot<P> {
    line: u64,
    lru: u64,
    payload: P,
}

impl<P> TagArray<P> {
    /// Creates a tag array with `sets` sets of `assoc` ways for lines of
    /// `line_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero or `line_bytes` is not a power of two.
    pub fn new(sets: usize, assoc: usize, line_bytes: u64) -> Self {
        assert!(sets > 0 && assoc > 0, "cache geometry must be non-zero");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        Self {
            sets: (0..sets).map(|_| Vec::with_capacity(assoc)).collect(),
            assoc,
            line_bytes,
            stamp: 0,
            touched: Vec::new(),
            dirty_all: false,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// The set index for a line address.
    #[inline]
    pub fn set_index(&self, line: u64) -> usize {
        ((line / self.line_bytes) % self.sets.len() as u64) as usize
    }

    fn bump(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }

    /// Looks up a line without touching LRU state.
    pub fn peek(&self, line: u64) -> Option<&P> {
        let set = &self.sets[self.set_index(line)];
        set.iter().find(|s| s.line == line).map(|s| &s.payload)
    }

    /// Looks up a line, marking it most-recently-used on hit.
    pub fn lookup_mut(&mut self, line: u64) -> Option<&mut P> {
        let stamp = self.bump();
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        for s in set.iter_mut() {
            if s.line == line {
                s.lru = stamp;
                return Some(&mut s.payload);
            }
        }
        None
    }

    /// Mutable access without an LRU touch (e.g. for snoops/invalidation
    /// side effects that should not perturb replacement).
    pub fn peek_mut(&mut self, line: u64) -> Option<&mut P> {
        let idx = self.set_index(line);
        self.sets[idx]
            .iter_mut()
            .find(|s| s.line == line)
            .map(|s| &mut s.payload)
    }

    /// Inserts a line (which must not already be present), evicting the LRU
    /// way if the set is full. Returns the evicted `(line, payload)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the line is already present.
    pub fn insert(&mut self, line: u64, payload: P) -> Option<(u64, P)> {
        debug_assert!(self.peek(line).is_none(), "line {line:#x} already present");
        let stamp = self.bump();
        let assoc = self.assoc;
        let idx = self.set_index(line);
        if self.sets[idx].is_empty() && !self.dirty_all {
            if self.touched.len() >= self.sets.len() {
                self.dirty_all = true;
                self.touched = Vec::new();
            } else {
                self.touched.push(idx as u32);
            }
        }
        let set = &mut self.sets[idx];
        let evicted = if set.len() >= assoc {
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.lru)
                .map(|(i, _)| i)
                .expect("non-empty set");
            let v = set.swap_remove(victim);
            Some((v.line, v.payload))
        } else {
            None
        };
        set.push(Slot {
            line,
            lru: stamp,
            payload,
        });
        evicted
    }

    /// Removes a line, returning its payload.
    pub fn invalidate(&mut self, line: u64) -> Option<P> {
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        set.iter()
            .position(|s| s.line == line)
            .map(|i| set.swap_remove(i).payload)
    }

    /// Iterates over all resident `(line, payload)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &P)> {
        self.sets.iter().flatten().map(|s| (s.line, &s.payload))
    }

    /// Iterates mutably over all resident `(line, payload)` pairs (no LRU
    /// side effects).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (u64, &mut P)> {
        self.sets
            .iter_mut()
            .flatten()
            .map(|s| (s.line, &mut s.payload))
    }

    /// Drops every resident line and rewinds the LRU stamp to its
    /// just-constructed value, keeping the per-set allocations for reuse.
    /// After this the array is indistinguishable from a fresh `new`.
    pub fn clear(&mut self) {
        if self.dirty_all {
            for set in &mut self.sets {
                set.clear();
            }
        } else {
            for &i in &self.touched {
                self.sets[i as usize].clear();
            }
        }
        self.touched.clear();
        self.dirty_all = false;
        self.stamp = 0;
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether the array holds no lines.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---- durable-snapshot serialization --------------------------------------

impl<P: glsc_wire::Wire> glsc_wire::Wire for Slot<P> {
    fn encode(&self, w: &mut glsc_wire::Writer) {
        let Self { line, lru, payload } = self;
        line.encode(w);
        lru.encode(w);
        payload.encode(w);
    }
    fn decode(r: &mut glsc_wire::Reader<'_>) -> Result<Self, glsc_wire::WireError> {
        Ok(Self {
            line: glsc_wire::Wire::decode(r)?,
            lru: glsc_wire::Wire::decode(r)?,
            payload: glsc_wire::Wire::decode(r)?,
        })
    }
}

// The LRU `stamp`, per-set slot order and `touched` set are all encoded
// exactly: replacement decisions (and the fleet-reset fast path) depend
// on them, so a round-tripped array must not merely hold the same lines
// but age and evict them identically.
impl<P: glsc_wire::Wire> glsc_wire::Wire for TagArray<P> {
    fn encode(&self, w: &mut glsc_wire::Writer) {
        let Self {
            sets,
            assoc,
            line_bytes,
            stamp,
            touched,
            dirty_all,
        } = self;
        sets.encode(w);
        assoc.encode(w);
        line_bytes.encode(w);
        stamp.encode(w);
        touched.encode(w);
        dirty_all.encode(w);
    }
    fn decode(r: &mut glsc_wire::Reader<'_>) -> Result<Self, glsc_wire::WireError> {
        Ok(Self {
            sets: glsc_wire::Wire::decode(r)?,
            assoc: glsc_wire::Wire::decode(r)?,
            line_bytes: glsc_wire::Wire::decode(r)?,
            stamp: glsc_wire::Wire::decode(r)?,
            touched: glsc_wire::Wire::decode(r)?,
            dirty_all: glsc_wire::Wire::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr() -> TagArray<u32> {
        TagArray::new(2, 2, 64)
    }

    #[test]
    fn hit_and_miss() {
        let mut a = arr();
        assert!(a.lookup_mut(0).is_none());
        a.insert(0, 10);
        assert_eq!(a.lookup_mut(0), Some(&mut 10));
        assert_eq!(a.peek(0), Some(&10));
        assert!(a.peek(64).is_none());
    }

    #[test]
    fn same_set_lines_evict_lru() {
        let mut a = arr();
        // Lines 0, 128, 256 all map to set 0 (2 sets of 64B lines).
        a.insert(0, 1);
        a.insert(128, 2);
        // Touch line 0 so 128 becomes LRU.
        a.lookup_mut(0);
        let evicted = a.insert(256, 3);
        assert_eq!(evicted, Some((128, 2)));
        assert!(a.peek(0).is_some());
        assert!(a.peek(256).is_some());
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut a = arr();
        a.insert(0, 1);
        a.insert(64, 2); // set 1
        a.insert(128, 3); // set 0
        assert_eq!(a.len(), 3);
        assert!(a.insert(192, 4).is_none()); // set 1, second way
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn invalidate_removes() {
        let mut a = arr();
        a.insert(0, 1);
        assert_eq!(a.invalidate(0), Some(1));
        assert_eq!(a.invalidate(0), None);
        assert!(a.is_empty());
    }

    #[test]
    fn peek_does_not_touch_lru() {
        let mut a = arr();
        a.insert(0, 1);
        a.insert(128, 2);
        // peek line 0: should NOT protect it.
        let _ = a.peek(0);
        let evicted = a.insert(256, 3);
        assert_eq!(evicted, Some((0, 1)));
    }

    #[test]
    fn clear_drops_every_resident_line() {
        let mut a = arr();
        a.insert(0, 1);
        a.insert(64, 2);
        a.insert(128, 3);
        a.clear();
        assert!(a.is_empty());
        assert!(a.peek(0).is_none() && a.peek(64).is_none() && a.peek(128).is_none());
        // Reusable after clear, including sets emptied and re-touched.
        a.insert(0, 9);
        assert_eq!(a.peek(0), Some(&9));
        a.clear();
        assert!(a.is_empty());
    }

    #[test]
    fn clear_survives_touch_log_overflow() {
        // Churn one set empty/non-empty more times than there are sets:
        // the touch log gives up (dirty_all) and clear must still drop
        // everything, repeatedly.
        let mut a = arr();
        for round in 0..3 {
            for i in 0..8u64 {
                a.insert(0, i as u32);
                if i < 7 {
                    a.invalidate(0);
                }
            }
            a.insert(64, 42);
            a.clear();
            assert!(a.is_empty(), "round {round}");
            assert!(a.peek(0).is_none() && a.peek(64).is_none(), "round {round}");
        }
    }

    #[test]
    fn iter_and_len() {
        let mut a = arr();
        a.insert(0, 1);
        a.insert(64, 2);
        let mut lines: Vec<u64> = a.iter().map(|(l, _)| l).collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![0, 64]);
    }
}
