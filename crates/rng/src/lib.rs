//! # glsc-rng — deterministic PRNG with a `rand`-style API
//!
//! The build environment is fully offline, so the crates.io `rand` crate
//! cannot be fetched. This crate is a small, self-contained stand-in that
//! mirrors the subset of `rand`'s 0.9 API the workspace uses
//! ([`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::random`],
//! [`Rng::random_range`], [`Rng::random_bool`], [`seq::SliceRandom`]), so
//! call sites read identically modulo the crate name.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — fast,
//! well-distributed, and (most importantly here) **deterministic across
//! platforms and releases**: dataset generation in `glsc-kernels` must
//! produce bit-identical inputs for reproducible figures.
//!
//! ```
//! use glsc_rng::rngs::StdRng;
//! use glsc_rng::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let a = rng.random_range(0..10u32);
//! assert!(a < 10);
//! let p: f64 = rng.random();
//! assert!((0.0..1.0).contains(&p));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Seedable constructor, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface, mirroring the used subset of `rand::Rng`.
pub trait Rng {
    /// The core entropy source: the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from its natural distribution
    /// (uniform over the full integer range; uniform in `[0, 1)` for
    /// floats).
    fn random<T: Random>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

/// Types samplable by [`Rng::random`].
pub trait Random {
    /// Draws one value from `rng`.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for u64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for f64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 24 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::random_range`], mirroring
/// `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` without modulo bias (Lemire's
/// multiply-shift; bias is unmeasurable at these span sizes and the
/// mapping is deterministic, which is what matters here).
fn below<R: Rng>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return (lo as i128 + rng.next_u64() as i128) as $t;
                }
                (lo as i128 + below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u: $t = Random::random(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_range!(f32, f64);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256** — the workspace's standard deterministic generator.
    ///
    /// Not cryptographically secure (neither is `rand::rngs::StdRng`'s
    /// use here); chosen for speed and cross-platform determinism.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// The raw xoshiro256** state word vector, for durable-state
        /// serialization (machine snapshots persist their chaos RNG
        /// mid-stream). Paired with [`StdRng::from_state`]:
        /// `from_state(rng.state())` continues the exact sequence.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator at the exact point captured by
        /// [`StdRng::state`].
        ///
        /// An all-zero state is the xoshiro fixed point (the generator
        /// would emit zeros forever); it cannot be produced by
        /// `seed_from_u64` and is rejected here by re-seeding from 0,
        /// keeping a corrupt snapshot from wedging the fault plan.
        pub fn from_state(s: [u64; 4]) -> Self {
            use super::SeedableRng;
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// In-place shuffling, mirroring `rand::seq::SliceRandom::shuffle`.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn state_round_trip_continues_the_sequence() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..37 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // The all-zero fixed point is refused, not propagated.
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.next_u64() | z.next_u64(), 0);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = rng.random_range(1..=5usize);
            assert!((1..=5).contains(&y));
            let z = rng.random_range(-1.0..1.0f32);
            assert!((-1.0..1.0).contains(&z));
            let w: f64 = rng.random();
            assert!((0.0..1.0).contains(&w));
            let n = rng.random_range(-10..10i64);
            assert!((-10..10).contains(&n));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert_eq!((0..100).filter(|_| rng.random_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| rng.random_bool(1.0)).count(), 100);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "seeded shuffle moved something"
        );
    }

    #[test]
    fn uniformity_rough_check() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buckets = [0usize; 8];
        for _ in 0..8000 {
            buckets[rng.random_range(0..8usize)] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((800..1200).contains(&b), "bucket {i} = {b}");
        }
    }
}
