//! # glsc-wire — binary state serialization for durable snapshots
//!
//! A tiny, dependency-free binary codec used to write [`Machine`]
//! snapshots (and the service journal) to disk. The workspace takes no
//! serialization dependency (the build environment is offline), so this
//! crate plays the role serde+bincode would: a [`Wire`] trait with
//! hand-rolled little-endian encoding, a bounds-checked [`Reader`], and
//! a [`wire_struct!`] macro that derives field-by-field impls with an
//! exhaustive-destructuring guard — adding a field to a serialized
//! struct without updating its wire impl is a compile error, not a
//! silently-truncated snapshot.
//!
//! Design rules, chosen for the snapshot use case:
//!
//! * **Deterministic**: a value encodes to exactly one byte string.
//!   Containers are length-prefixed; map-like callers must sort their
//!   keys before encoding (see `glsc-mem`'s backing-store impl).
//! * **Strict**: decoding validates lengths, enum tags and invariants
//!   and fails with a typed [`WireError`] — never panics, never guesses.
//! * **Versioned at the envelope, not per field**: the snapshot codec in
//!   `glsc-sim` frames the payload with a magic string, format version
//!   and whole-payload checksum ([`fnv64`]); this crate only defines the
//!   raw field encoding.
//!
//! Floating-point fields travel as IEEE-754 bit patterns (`to_bits`),
//! so round-trips are bit-exact even for NaNs.
//!
//! [`Machine`]: ../glsc_sim/struct.Machine.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Why a byte string failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value was complete.
    Eof {
        /// Byte offset at which more input was needed.
        at: usize,
    },
    /// A value decoded to something the target type cannot represent
    /// (bad enum tag, out-of-range length, non-boolean byte...).
    Invalid {
        /// Byte offset of the offending value.
        at: usize,
        /// What was being decoded.
        what: &'static str,
    },
    /// Decoding finished but input bytes remain.
    TrailingBytes {
        /// Number of undecoded bytes left over.
        extra: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Eof { at } => write!(f, "unexpected end of input at byte {at}"),
            WireError::Invalid { at, what } => write!(f, "invalid {what} at byte {at}"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after the value")
            }
        }
    }
}

impl Error for WireError {}

/// Growable little-endian byte sink.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes with no length prefix (caller frames them).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Bounds-checked little-endian byte source.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Reads from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current byte offset (for error reporting).
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails with [`WireError::TrailingBytes`] unless all input was
    /// consumed.
    pub fn finish(&self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            extra => Err(WireError::TrailingBytes { extra }),
        }
    }

    /// An [`WireError::Invalid`] at the current offset.
    pub fn invalid(&self, what: &'static str) -> WireError {
        WireError::Invalid { at: self.pos, what }
    }

    /// Takes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Eof { at: self.buf.len() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(
            b.try_into().expect("take(4) returned 4 bytes"),
        ))
    }

    /// Reads a little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(
            b.try_into().expect("take(8) returned 8 bytes"),
        ))
    }

    /// Reads a length prefix, rejecting values that could not possibly
    /// fit in the remaining input (each element takes at least one
    /// byte), so a corrupt length fails fast instead of attempting a
    /// multi-gigabyte allocation.
    pub fn get_len(&mut self) -> Result<usize, WireError> {
        let at = self.pos;
        let v = self.get_u64()?;
        if v > self.remaining() as u64 {
            return Err(WireError::Invalid {
                at,
                what: "length prefix",
            });
        }
        Ok(v as usize)
    }
}

/// A type with a canonical binary encoding.
///
/// `decode(encode(x)) == x` must hold bit-exactly, and `encode` must be
/// a pure function of the value (no iteration-order or address
/// dependence).
pub trait Wire: Sized {
    /// Appends this value's encoding to `w`.
    fn encode(&self, w: &mut Writer);
    /// Decodes one value, advancing `r` past it.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

/// Encodes a value to a fresh byte vector.
pub fn to_bytes<T: Wire>(value: &T) -> Vec<u8> {
    let mut w = Writer::new();
    value.encode(&mut w);
    w.into_bytes()
}

/// Decodes a value that must span the entire input.
pub fn from_bytes<T: Wire>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = Reader::new(bytes);
    let v = T::decode(&mut r)?;
    r.finish()?;
    Ok(v)
}

macro_rules! impl_wire_int {
    ($($ty:ty),+) => {$(
        impl Wire for $ty {
            fn encode(&self, w: &mut Writer) {
                w.put_bytes(&self.to_le_bytes());
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
                let b = r.take(std::mem::size_of::<$ty>())?;
                Ok(<$ty>::from_le_bytes(b.try_into().expect("take returned the requested size")))
            }
        }
    )+};
}

impl_wire_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl Wire for usize {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self as u64);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let at = r.pos();
        let v = r.get_u64()?;
        usize::try_from(v).map_err(|_| WireError::Invalid { at, what: "usize" })
    }
}

impl Wire for bool {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(*self as u8);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let at = r.pos();
        match r.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Invalid { at, what: "bool" }),
        }
    }
}

impl Wire for f64 {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.to_bits());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(f64::from_bits(r.get_u64()?))
    }
}

impl Wire for f32 {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.to_bits());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(f32::from_bits(r.get_u32()?))
    }
}

impl Wire for String {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.len() as u64);
        w.put_bytes(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.get_len()?;
        let at = r.pos();
        let bytes = r.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Invalid { at, what: "utf-8" })
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let at = r.pos();
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(WireError::Invalid {
                at,
                what: "option tag",
            }),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.len() as u64);
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.get_len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for VecDeque<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.len() as u64);
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.get_len()?;
        let mut out = VecDeque::with_capacity(n);
        for _ in 0..n {
            out.push_back(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Box<T> {
    fn encode(&self, w: &mut Writer) {
        (**self).encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Box::new(T::decode(r)?))
    }
}

impl<T: Wire, const N: usize> Wire for [T; N] {
    fn encode(&self, w: &mut Writer) {
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        // Collect through a Vec to avoid requiring T: Default/Copy.
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::decode(r)?);
        }
        Ok(out
            .try_into()
            .unwrap_or_else(|_| unreachable!("exactly N elements were decoded")))
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

/// Derives a [`Wire`] impl for a struct by encoding the listed fields in
/// order. The expansion destructures `Self` exhaustively, so the impl
/// fails to compile if the struct gains, loses or renames a field — the
/// guard that keeps snapshots honest as state structs evolve.
///
/// ```
/// struct Point { x: u64, y: u64 }
/// glsc_wire::wire_struct!(Point { x, y });
///
/// let p = Point { x: 3, y: 9 };
/// let bytes = glsc_wire::to_bytes(&p);
/// let q: Point = glsc_wire::from_bytes(&bytes).unwrap();
/// assert_eq!((q.x, q.y), (3, 9));
/// ```
#[macro_export]
macro_rules! wire_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::Wire for $ty {
            fn encode(&self, w: &mut $crate::Writer) {
                let Self { $($field),+ } = self;
                $( $crate::Wire::encode($field, w); )+
            }
            fn decode(r: &mut $crate::Reader<'_>) -> Result<Self, $crate::WireError> {
                Ok(Self { $( $field: $crate::Wire::decode(r)? ),+ })
            }
        }
    };
}

/// FNV-1a 64-bit digest — the whole-payload checksum of the snapshot
/// envelope and the per-record checksum of the service journal. Not
/// cryptographic; it detects torn writes and bit rot, which is all a
/// local cache needs.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Demo {
        a: u64,
        b: Vec<u8>,
        c: Option<(u32, bool)>,
        d: [u64; 3],
        e: f64,
    }
    wire_struct!(Demo { a, b, c, d, e });

    #[test]
    fn primitives_round_trip() {
        let v = Demo {
            a: u64::MAX,
            b: vec![1, 2, 3],
            c: Some((7, true)),
            d: [9, 8, 7],
            e: -0.0,
        };
        let bytes = to_bytes(&v);
        assert_eq!(from_bytes::<Demo>(&bytes).unwrap(), v);
        // NaN survives bit-exactly.
        let nan = f64::from_bits(0x7ff8_dead_beef_0001);
        let back: f64 = from_bytes(&to_bytes(&nan)).unwrap();
        assert_eq!(back.to_bits(), nan.to_bits());
    }

    #[test]
    fn truncation_and_garbage_are_typed_errors() {
        let bytes = to_bytes(&Demo {
            a: 1,
            b: vec![5; 4],
            c: None,
            d: [0; 3],
            e: 1.5,
        });
        for cut in 0..bytes.len() {
            let err = from_bytes::<Demo>(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Eof { .. } | WireError::Invalid { .. }),
                "cut at {cut}: {err:?}"
            );
        }
        let mut extra = bytes.clone();
        extra.push(0);
        assert_eq!(
            from_bytes::<Demo>(&extra),
            Err(WireError::TrailingBytes { extra: 1 })
        );
        // A bad bool byte and a bad option tag are Invalid, not panics.
        assert_eq!(
            from_bytes::<bool>(&[2]),
            Err(WireError::Invalid {
                at: 0,
                what: "bool"
            })
        );
        assert_eq!(
            from_bytes::<Option<u8>>(&[9, 0]),
            Err(WireError::Invalid {
                at: 0,
                what: "option tag"
            })
        );
    }

    #[test]
    fn hostile_length_prefix_fails_fast() {
        // Vec length claims 2^60 elements with 0 bytes of payload: the
        // reader must reject the prefix, not try to allocate.
        let mut w = Writer::new();
        w.put_u64(1 << 60);
        assert!(matches!(
            from_bytes::<Vec<u8>>(&w.into_bytes()),
            Err(WireError::Invalid { .. })
        ));
    }

    #[test]
    fn fnv64_is_stable() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv64(b"ab"), fnv64(b"ba"));
    }
}
