//! The atomicity oracle under fault injection (DESIGN.md §9).
//!
//! Every kernel, under every sampled fault plan, must still produce a
//! memory image the kernel's golden validator accepts: §3 of the paper
//! allows faults to *destroy* reservations (slowing execution via
//! retries) but never to break atomicity. The suite sweeps all seven
//! kernels × both variants × many seeds — well over the 200 seeded runs
//! the acceptance bar requires — and asserts the fault plans actually
//! perturbed the runs (a chaos sweep that injected nothing proves
//! nothing).
//!
//! Convention: every failure message names the seed so a red run can be
//! replayed exactly.

use glsc_kernels::{build_named, run_workload_chaos, Dataset, Variant, KERNEL_NAMES};
use glsc_sim::{ChaosConfig, MachineConfig};

/// Machine used by the sweeps: small enough for CI, enough cores and SMT
/// threads for real contention, watchdog + budget tight enough that a
/// protocol bug surfaces as a structured error rather than a hang.
fn chaos_cfg() -> MachineConfig {
    MachineConfig::paper(2, 2, 4)
        .with_max_cycles(50_000_000)
        .with_watchdog_window(Some(2_000_000))
}

#[test]
fn all_kernels_validate_under_sampled_fault_plans() {
    let cfg = chaos_cfg();
    let seeds: Vec<u64> = (0..15).map(|i| 0xC0FFEE + 17 * i).collect();
    let mut runs = 0u64;
    let mut total_faults = 0u64;
    let mut perturbed_runs = 0u64;
    for kernel in KERNEL_NAMES {
        for variant in [Variant::Base, Variant::Glsc] {
            for &seed in &seeds {
                let w = build_named(kernel, Dataset::Tiny, variant, &cfg).expect("known kernel");
                let (_, stats) = run_workload_chaos(&w, &cfg, ChaosConfig::from_seed(seed))
                    .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
                runs += 1;
                total_faults += stats.total_faults();
                if stats.total_destructive() > 0 {
                    perturbed_runs += 1;
                }
            }
        }
    }
    assert!(runs >= 200, "need >= 200 seeded runs, did {runs}");
    assert!(
        total_faults > runs,
        "fault plans injected almost nothing ({total_faults} faults over {runs} runs)"
    );
    // Tiny runs are short, so not every single one necessarily catches a
    // destructive fault, but the overwhelming majority must.
    assert!(
        perturbed_runs * 2 > runs,
        "only {perturbed_runs}/{runs} runs saw a destructive fault"
    );
}

#[test]
fn aggressive_chaos_still_validates_glsc() {
    // Injection on every access with high rates: the worst-case schedule
    // for the retry loops. GLSC variants exercise vgatherlink/vscattercond
    // element retries the hardest.
    let cfg = chaos_cfg();
    for kernel in KERNEL_NAMES {
        for seed in [1u64, 2, 3] {
            let w = build_named(kernel, Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");
            let (_, stats) = run_workload_chaos(&w, &cfg, ChaosConfig::aggressive(seed))
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(
                stats.total_destructive() > 0,
                "{kernel} seed {seed}: aggressive plan injected nothing"
            );
        }
    }
}

#[test]
fn chaos_under_buffered_reservations_validates() {
    // §3.3 buffer mode plus buffer-pressure injection: reservations die
    // both from capacity overflow and from forced evictions.
    let mut cfg = chaos_cfg();
    cfg.mem.glsc_buffer_entries = Some(4);
    let mut forced = 0u64;
    for kernel in KERNEL_NAMES {
        for seed in [11u64, 12, 13] {
            let w = build_named(kernel, Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");
            let (_, stats) = run_workload_chaos(&w, &cfg, ChaosConfig::aggressive(seed))
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            forced += stats.forced_buffer_evictions;
        }
    }
    assert!(forced > 0, "buffer pressure never forced an eviction");
}

#[test]
fn chaos_run_is_deterministic_per_seed() {
    let cfg = chaos_cfg();
    let w = build_named("HIP", Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");
    let (out_a, stats_a) = run_workload_chaos(&w, &cfg, ChaosConfig::from_seed(99)).unwrap();
    let (out_b, stats_b) = run_workload_chaos(&w, &cfg, ChaosConfig::from_seed(99)).unwrap();
    assert_eq!(stats_a, stats_b, "same seed must inject identical faults");
    assert_eq!(
        out_a.report, out_b.report,
        "same seed must produce an identical run"
    );
    let (_, stats_c) = run_workload_chaos(&w, &cfg, ChaosConfig::from_seed(100)).unwrap();
    assert_ne!(
        stats_a, stats_c,
        "different seeds should inject different fault sequences"
    );
}

#[test]
fn chaos_slows_but_never_changes_results() {
    // Timing differs (jitter + retries), results agree: run HIP with and
    // without a plan; both validate, and the chaotic run retires at least
    // as many instructions (retries can only add work).
    let cfg = chaos_cfg();
    let w = build_named("HIP", Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");
    let clean = glsc_kernels::run_workload(&w, &cfg).unwrap();
    let (chaotic, stats) = run_workload_chaos(&w, &cfg, ChaosConfig::aggressive(7)).unwrap();
    assert!(stats.total_destructive() > 0);
    assert!(
        chaotic.report.total_instructions() >= clean.report.total_instructions(),
        "destructive faults cannot remove work: {} < {}",
        chaotic.report.total_instructions(),
        clean.report.total_instructions()
    );
}
