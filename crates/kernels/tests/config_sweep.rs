//! Cross-configuration validation sweep: every kernel must validate under
//! unusual-but-legal machine configurations (odd widths, buffered
//! reservations, fail-on-miss policy, prefetcher off).

use glsc_kernels::{build_named, run_workload, Dataset, Variant, KERNEL_NAMES};
use glsc_sim::{GlscConfig, MachineConfig};

#[test]
fn width_eight_validates_everywhere() {
    // Width 8 is not in the paper's sweep but must still be correct.
    let cfg = MachineConfig::paper(2, 2, 8);
    for kernel in KERNEL_NAMES {
        let w = build_named(kernel, Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");
        run_workload(&w, &cfg).unwrap_or_else(|e| panic!("{kernel}: {e}"));
    }
}

#[test]
fn fail_on_miss_policy_preserves_correctness() {
    let mut cfg = MachineConfig::paper(2, 2, 4);
    cfg.glsc = GlscConfig {
        fail_on_l1_miss: true,
        ..GlscConfig::default()
    };
    for kernel in KERNEL_NAMES {
        let w = build_named(kernel, Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");
        let out = run_workload(&w, &cfg).unwrap_or_else(|e| panic!("{kernel}: {e}"));
        assert!(out.report.cycles > 0);
    }
}

#[test]
fn fail_on_remote_link_policy_preserves_correctness() {
    let mut cfg = MachineConfig::paper(1, 4, 4);
    cfg.glsc = GlscConfig {
        fail_on_remote_link: true,
        ..GlscConfig::default()
    };
    for kernel in ["HIP", "TMS", "SMC"] {
        let w = build_named(kernel, Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");
        run_workload(&w, &cfg).unwrap_or_else(|e| panic!("{kernel}: {e}"));
    }
}

#[test]
fn buffered_reservations_preserve_correctness() {
    let mut cfg = MachineConfig::paper(2, 2, 4);
    cfg.mem.glsc_buffer_entries = Some(8);
    for kernel in KERNEL_NAMES {
        let w = build_named(kernel, Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");
        run_workload(&w, &cfg).unwrap_or_else(|e| panic!("{kernel}: {e}"));
    }
}

#[test]
fn prefetcher_off_preserves_correctness_and_timing_changes() {
    let mut on = MachineConfig::paper(1, 1, 4);
    on.mem.prefetch = true;
    let mut off = on.clone();
    off.mem.prefetch = false;
    let w_on = build_named("TMS", Dataset::Tiny, Variant::Glsc, &on).expect("known kernel");
    let w_off = build_named("TMS", Dataset::Tiny, Variant::Glsc, &off).expect("known kernel");
    let c_on = run_workload(&w_on, &on).unwrap().report.cycles;
    let c_off = run_workload(&w_off, &off).unwrap().report.cycles;
    assert_ne!(c_on, c_off, "prefetcher must affect timing");
    assert!(c_on < c_off, "streaming loads should benefit from prefetch");
}

#[test]
fn single_issue_machine_still_validates() {
    let mut cfg = MachineConfig::paper(1, 2, 4);
    cfg.issue_width = 1;
    for kernel in ["HIP", "GBC"] {
        let w = build_named(kernel, Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");
        run_workload(&w, &cfg).unwrap_or_else(|e| panic!("{kernel}: {e}"));
    }
}

#[test]
fn dataset_b_tiny_shapes_run_both_variants() {
    // Quick dataset-B coverage at a contended configuration.
    let cfg = MachineConfig::paper(4, 1, 4);
    for kernel in ["HIP", "TMS"] {
        for variant in [Variant::Base, Variant::Glsc] {
            let w = build_named(kernel, Dataset::Tiny, variant, &cfg).expect("known kernel");
            run_workload(&w, &cfg).unwrap_or_else(|e| panic!("{kernel}: {e}"));
        }
    }
}
