//! Differential oracle: the pattern engine against the hand-coded §5.2
//! microbenchmark.
//!
//! The pattern builder mirrors the microbenchmark's layout discipline
//! (counter table first, then one flat index array) and both emit
//! through the same shared update-loop emitter — so a pattern spec that
//! reproduces the micro generator's indices must produce the *same
//! program, same memory image, and bit-identical `RunReport`*. Any
//! drift in the refactored emitter, the image layout, or the pattern
//! executor shows up here as a hard failure, not a plausible-looking
//! but subtly different figure.

use glsc_kernels::micro::{Micro, Scenario};
use glsc_kernels::pattern::Pattern;
use glsc_kernels::{build_named, run_workload, Dataset, KernelError, Variant};
use glsc_patterns::{IndexPattern, PatternSpec, UpdateKind};
use glsc_sim::MachineConfig;

/// Tiny-dataset micro parameters (see `Micro::new`): 40 iterations,
/// seed 72; scenario A's counter table is `shared_lines * 16 = 512`
/// words regardless of thread count.
const MICRO_TINY_ITERS: u32 = 40;

/// The hand-written equivalent spec: a trace pattern carrying exactly
/// the micro generator's flat index stream over the same table size.
fn trace_twin(micro: &Micro, table_words: u32, threads: usize, width: usize) -> PatternSpec {
    let flat: Vec<u32> = micro
        .gen_indices(threads, width)
        .into_iter()
        .flatten()
        .collect();
    PatternSpec {
        index: IndexPattern::Trace {
            len: table_words,
            indices: flat,
        },
        iters: MICRO_TINY_ITERS,
        seed: 0, // traces draw nothing from the RNG
        update: UpdateKind::Inc,
        reads: 0,
    }
}

fn assert_twin_bit_identical(
    scenario: Scenario,
    table_words: u32,
    variant: Variant,
    (cores, tpc): (usize, usize),
    width: usize,
) {
    let cfg = MachineConfig::paper(cores, tpc, width);
    let threads = cfg.total_threads();
    let micro = Micro::new(scenario, Dataset::Tiny);
    let micro_w = micro.build(variant, &cfg);

    let spec = trace_twin(&micro, table_words, threads, width);
    spec.check().expect("twin spec is in bounds");
    let pat_w = Pattern::new(spec).build(variant, &cfg);

    assert_eq!(
        pat_w.program.to_string(),
        micro_w.program.to_string(),
        "{scenario:?}/{variant:?}: programs diverged"
    );
    assert_eq!(
        pat_w.fingerprint(),
        micro_w.fingerprint(),
        "{scenario:?}/{variant:?}: image or program fingerprint diverged"
    );

    let micro_out = run_workload(&micro_w, &cfg).expect("micro runs");
    let pat_out = run_workload(&pat_w, &cfg).expect("pattern twin runs");
    assert_eq!(
        pat_out.report, micro_out.report,
        "{scenario:?}/{variant:?}: RunReports not bit-identical"
    );
}

#[test]
fn trace_twin_of_micro_a_is_bit_identical_both_variants() {
    // Scenario A, Tiny: 512-word shared table.
    assert_twin_bit_identical(Scenario::A, 512, Variant::Glsc, (1, 2), 4);
    assert_twin_bit_identical(Scenario::A, 512, Variant::Base, (1, 2), 4);
}

#[test]
fn trace_twin_survives_multicore_and_other_scenarios() {
    // Scenario A on the paper's 4x4 machine: 16 threads, same table.
    assert_twin_bit_identical(Scenario::A, 512, Variant::Glsc, (4, 4), 4);
    // Scenario B, Tiny, 2 threads: private tables, 2 * 8 * 16 words.
    assert_twin_bit_identical(Scenario::B, 256, Variant::Glsc, (1, 2), 4);
    // Scenario D (full aliasing — the GLSC worst case) stays identical.
    assert_twin_bit_identical(Scenario::D, 256, Variant::Base, (1, 2), 4);
}

#[test]
fn stride_one_spec_compiles_to_the_micro_program_text() {
    // A `stride:1` spec over the micro scenario's exact geometry (512
    // counter words, 40 iterations) allocates the same addresses and
    // flows through the same emitter, so the *program text* must match
    // the hand-coded kernel instruction for instruction — only the
    // index array contents (and hence timing) differ.
    let cfg = MachineConfig::paper(1, 2, 4);
    for variant in [Variant::Glsc, Variant::Base] {
        let micro_w = Micro::new(Scenario::A, Dataset::Tiny).build(variant, &cfg);
        let pat_w = Pattern::parse("stride:1x512*40")
            .expect("spec parses")
            .build(variant, &cfg);
        assert_eq!(
            pat_w.program.to_string(),
            micro_w.program.to_string(),
            "{variant:?}: stride:1 program text diverged from micro"
        );
    }
}

#[test]
fn trace_twin_round_trips_through_the_text_grammar() {
    // The twin is expressible as a plain spec string: format -> parse
    // -> build produces the same workload fingerprint.
    let cfg = MachineConfig::paper(1, 2, 4);
    let micro = Micro::new(Scenario::A, Dataset::Tiny);
    let spec = trace_twin(&micro, 512, cfg.total_threads(), cfg.simd_width);
    let reparsed = PatternSpec::parse(&spec.to_string()).expect("canonical text parses");
    assert_eq!(reparsed, spec);
    let a = Pattern::new(spec).build(Variant::Glsc, &cfg);
    let b = Pattern::new(reparsed).build(Variant::Glsc, &cfg);
    assert_eq!(a.fingerprint(), b.fingerprint());
}

#[test]
fn build_named_dispatches_patterns_and_rejects_garbage() {
    let cfg = MachineConfig::paper(1, 2, 4);
    // The pattern: namespace builds and runs. Dataset::A leaves the
    // spec's iteration count untouched.
    let w = build_named(
        "pattern:conflict:p=0.5x64*8",
        Dataset::A,
        Variant::Glsc,
        &cfg,
    )
    .expect("pattern namespace builds");
    run_workload(&w, &cfg).expect("pattern workload validates");
    // Tiny scales iterations down: distinct cache identity, still runs.
    let tiny = build_named(
        "pattern:conflict:p=0.5x64*8",
        Dataset::Tiny,
        Variant::Glsc,
        &cfg,
    )
    .expect("tiny tier builds");
    assert_ne!(tiny.fingerprint(), w.fingerprint());

    // Typed errors, never panics: hostile kernel names and specs.
    assert!(matches!(
        build_named("EVIL", Dataset::Tiny, Variant::Glsc, &cfg),
        Err(KernelError::Unknown(_))
    ));
    assert!(matches!(
        build_named("pattern:stride:0x9", Dataset::Tiny, Variant::Glsc, &cfg),
        Err(KernelError::Pattern(_))
    ));
    assert!(matches!(
        build_named("pattern:", Dataset::Tiny, Variant::Glsc, &cfg),
        Err(KernelError::Pattern(_))
    ));
}
