//! Pattern-driven workloads: compiles any `glsc-patterns` spec into
//! Base and GLSC programs.
//!
//! This is the execution side of the pattern engine. `glsc-patterns`
//! owns the data side — taxonomy, grammar, bounds, deterministic index
//! generation — and this module turns a checked [`PatternSpec`] into a
//! runnable [`Workload`] with the same shape as the §5.2
//! microbenchmark: a flat precomputed index array, a zeroed counter
//! table, and the shared atomic-update loop emitted by
//! [`crate::micro`]'s `emit_update_loop`. A spec that reproduces the
//! microbenchmark's indices therefore reproduces its *program and
//! image bit-for-bit* (see `tests/pattern_differential.rs`).
//!
//! The validate closure recomputes expected counter values from the
//! generated indices, so every run is checked against a functional
//! model of "each touched word gains `update.amount()` per touch" —
//! lost updates from broken atomicity fail validation immediately.

use crate::common::{Dataset, MemImage, Variant, Workload};
use crate::micro::{emit_update_loop, UpdateLoop};
use glsc_patterns::PatternSpec;
use glsc_sim::MachineConfig;
use std::collections::HashMap;

/// A pattern-spec workload generator, analogous to [`crate::micro::Micro`]
/// but driven entirely by data.
#[derive(Clone, Debug)]
pub struct Pattern {
    spec: PatternSpec,
}

impl Pattern {
    /// Wraps a spec. The spec should already be checked (specs from
    /// [`PatternSpec::parse`] or a wire decode always are).
    pub fn new(spec: PatternSpec) -> Self {
        Self { spec }
    }

    /// Parses a spec string (the `stride:4x1024*64@9` grammar).
    pub fn parse(text: &str) -> Result<Self, glsc_patterns::ParseError> {
        PatternSpec::parse(text).map(Self::new)
    }

    /// The wrapped spec.
    pub fn spec(&self) -> &PatternSpec {
        &self.spec
    }

    /// Scales the iteration count for a dataset tier: `Tiny` runs an
    /// eighth of the spec'd iterations (minimum 1) so CI-sized sweeps
    /// finish fast, `A`/`B` run the spec as written.
    pub fn for_dataset(mut self, dataset: Dataset) -> Self {
        if dataset == Dataset::Tiny {
            self.spec.iters = (self.spec.iters / 8).max(1);
        }
        self
    }

    /// Builds the runnable workload for a machine configuration —
    /// same layout discipline as the microbenchmark: counter table
    /// allocated first, then one flat index array with thread `t`'s
    /// sequence at `t * iters * width`.
    pub fn build(&self, variant: Variant, cfg: &MachineConfig) -> Workload {
        let width = cfg.simd_width;
        let threads = cfg.total_threads();
        let indices = self.spec.gen_indices(threads, width);
        let counters = self.spec.index.table_words() as usize;
        let amount = self.spec.update.amount();

        let mut expected: HashMap<u32, u32> = HashMap::new();
        for seq in &indices {
            for i in seq {
                *expected.entry(*i).or_default() += amount;
            }
        }

        let mut image = MemImage::new();
        let a_counters = image.alloc_zeroed(counters);
        let per_thread = self.spec.iters as usize * width;
        let mut flat = Vec::with_capacity(threads * per_thread);
        for seq in &indices {
            flat.extend_from_slice(seq);
        }
        let a_idx = image.alloc_u32(&flat);

        let program = emit_update_loop(&UpdateLoop {
            variant,
            width,
            iters: self.spec.iters as usize,
            per_thread,
            a_idx,
            a_counters,
            backoff: false,
            add: amount as i64,
            reads: self.spec.reads as usize,
        });

        let name = format!("pattern:{}/{}/w{}", self.spec, variant.label(), width);
        Workload {
            name,
            program,
            image,
            validate: Box::new(move |backing| {
                for w in 0..counters as u32 {
                    let got = backing.read_u32(a_counters + 4 * w as u64);
                    let expect = expected.get(&w).copied().unwrap_or(0);
                    if got != expect {
                        return Err(format!("counter {w}: got {got}, expected {expect}"));
                    }
                }
                Ok(())
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_workload;

    fn check(spec: &str, variant: Variant, cores: usize, tpc: usize, width: usize) {
        let cfg = MachineConfig::paper(cores, tpc, width);
        let w = Pattern::parse(spec)
            .expect("spec parses")
            .build(variant, &cfg);
        run_workload(&w, &cfg).unwrap_or_else(|e| panic!("{spec} {variant:?}: {e}"));
    }

    #[test]
    fn taxonomy_validates_on_both_variants() {
        for spec in [
            "stride:1x256*16",
            "stride:16x256*16",
            "mostly:1x256/p=0.1*16",
            "block:8/16*16",
            "conflict:p=0.25x64*16",
            "conflict:p=1x64*16",
            "trace:32:0,5,9,31*16",
        ] {
            check(spec, Variant::Glsc, 1, 2, 4);
            check(spec, Variant::Base, 1, 2, 4);
        }
    }

    #[test]
    fn multicore_and_wide_shapes_validate() {
        check("conflict:p=0.5x128*8", Variant::Glsc, 2, 2, 4);
        check("conflict:p=0.5x128*8", Variant::Base, 2, 2, 4);
        check("block:16/8*8", Variant::Glsc, 1, 1, 16);
    }

    #[test]
    fn update_kind_and_read_mix_validate() {
        check("stride:3x64*8!add5", Variant::Glsc, 1, 2, 4);
        check("stride:3x64*8!add5", Variant::Base, 1, 2, 4);
        check("conflict:p=0.25x64*8+r2", Variant::Glsc, 1, 2, 4);
        check("conflict:p=0.25x64*8+r2", Variant::Base, 1, 2, 4);
    }

    #[test]
    fn functional_reference_agrees_as_result_oracle() {
        // Single-threaded: the functional executor must leave the same
        // counter table the validate closure expects.
        for spec in [
            "stride:1x64*8",
            "conflict:p=0.5x32*8!add3",
            "block:4/8*8+r1",
        ] {
            for variant in [Variant::Glsc, Variant::Base] {
                let cfg = MachineConfig::paper(1, 1, 4);
                let w = Pattern::parse(spec).unwrap().build(variant, &cfg);
                let mut backing = glsc_mem::Backing::new();
                w.image.apply(&mut backing);
                glsc_sim::reference::run_functional(&w.program, &mut backing, 4, 2_000_000)
                    .unwrap_or_else(|e| panic!("{spec} {variant:?}: {e:?}"));
                (w.validate)(&backing).unwrap_or_else(|e| panic!("{spec} {variant:?}: {e}"));
            }
        }
    }

    #[test]
    fn names_and_fingerprints_separate_specs() {
        let cfg = MachineConfig::paper(1, 1, 4);
        let a = Pattern::parse("stride:1x64*8")
            .unwrap()
            .build(Variant::Glsc, &cfg);
        let b = Pattern::parse("stride:2x64*8")
            .unwrap()
            .build(Variant::Glsc, &cfg);
        assert_eq!(a.name, "pattern:stride:1x64*8@9/GLSC/w4");
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn tiny_dataset_scales_iterations_down() {
        let p = Pattern::parse("stride:1x64*80").unwrap();
        assert_eq!(p.clone().for_dataset(Dataset::Tiny).spec().iters, 10);
        assert_eq!(p.clone().for_dataset(Dataset::A).spec().iters, 80);
        assert_eq!(
            Pattern::parse("stride:1x64*2")
                .unwrap()
                .for_dataset(Dataset::Tiny)
                .spec()
                .iters,
            1
        );
    }
}
