//! FS — Forward Triangular Solve (Table 2).
//!
//! The reduction phase of a blocked sparse lower-triangular solve
//! `Lx = y`: the matrix is divided into dense 16×16 subblocks; each
//! off-diagonal subblock `(I, J)` computes a dense matrix-vector product
//! with the already-solved `x_J` and **atomically subtracts** the
//! contribution from the shared right-hand-side vector of block-row `I`.
//! Subblocks in the same block-row race on that vector, which is exactly
//! the synchronization the paper measures.
//!
//! *Substitution note (DESIGN.md §3.5):* the paper schedules subblocks
//! with a dependence graph driven by the diagonal solves. We treat `x` as
//! given and run all subblock tasks in one parallel sweep — the dense SIMD
//! work, the atomic fp-subtract reductions, and their contention pattern
//! are identical; only the inter-level ordering (which adds no atomic
//! traffic) is elided.
//!
//! * **Base**: per-lane scalar `ll`/`fsub`/`sc` retry loops;
//! * **GLSC**: gather-link / `vfsub` / scatter-cond on the contiguous
//!   16-element block-row range — same-line combining is very effective
//!   here, mirroring FS's large "L1 accesses" reduction in Table 4.

use crate::common::{
    approx_eq, emit_const_one, emit_partition, Dataset, MemImage, Variant, Workload,
};
use glsc_isa::{LaneSel, MReg, ProgramBuilder, Reg, VReg};
use glsc_rng::rngs::StdRng;
use glsc_rng::seq::SliceRandom;
use glsc_rng::{Rng, SeedableRng};
use glsc_sim::MachineConfig;

/// Side of a dense subblock in elements. The paper's FS spends most of its
/// instructions in the atomic reductions (75% dynamic-instruction
/// reduction in Table 4), implying small dense blocks relative to the
/// reduction work; 8×8 blocks reproduce that balance.
pub const BLOCK: usize = 8;

/// Input parameters for [`Fs`].
#[derive(Clone, Debug)]
pub struct FsParams {
    /// Number of 16-wide block rows (`n = 16 * nblocks` unknowns).
    pub nblocks: usize,
    /// Probability that a strictly-lower subblock is present.
    pub density: f64,
    /// RNG seed.
    pub seed: u64,
}

/// A generated blocked lower-triangular reduction problem.
#[derive(Clone, Debug)]
pub struct FsData {
    /// Block-row index per task.
    pub blk_i: Vec<u32>,
    /// Block-column index per task.
    pub blk_j: Vec<u32>,
    /// Offset (in elements) of each task's dense 16×16 block, column-major.
    pub blk_off: Vec<u32>,
    /// Concatenated block values.
    pub vals: Vec<f32>,
    /// The solved vector `x`.
    pub x: Vec<f32>,
    /// Initial right-hand side.
    pub rhs0: Vec<f32>,
}

/// The FS benchmark.
#[derive(Clone, Debug)]
pub struct Fs {
    params: FsParams,
}

impl Fs {
    /// Benchmark instance for a dataset of Table 3 (scaled).
    pub fn new(dataset: Dataset) -> Self {
        let params = match dataset {
            // 2171x5167 @ 2.47% -> fewer, sparser block rows.
            Dataset::A => FsParams {
                nblocks: 40,
                density: 0.30,
                seed: 31,
            },
            // 3136x9408 @ 15.06% -> denser coupling, more contention.
            Dataset::B => FsParams {
                nblocks: 44,
                density: 0.55,
                seed: 32,
            },
            Dataset::Tiny => FsParams {
                nblocks: 10,
                density: 0.5,
                seed: 33,
            },
        };
        Self { params }
    }

    /// Benchmark instance with explicit parameters.
    pub fn with_params(params: FsParams) -> Self {
        Self { params }
    }

    /// Generates the blocked problem.
    pub fn generate(&self) -> FsData {
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let nb = self.params.nblocks;
        let mut tasks: Vec<(u32, u32)> = Vec::new();
        for i in 1..nb as u32 {
            for j in 0..i {
                if rng.random_bool(self.params.density) {
                    tasks.push((i, j));
                }
            }
        }
        // Random task order: block-rows interleave across threads, giving
        // realistic contention on the shared rhs.
        tasks.shuffle(&mut rng);
        let mut d = FsData {
            blk_i: Vec::new(),
            blk_j: Vec::new(),
            blk_off: Vec::new(),
            vals: Vec::new(),
            x: (0..nb * BLOCK)
                .map(|_| rng.random_range(-1.0..1.0))
                .collect(),
            rhs0: (0..nb * BLOCK)
                .map(|_| rng.random_range(-1.0..1.0))
                .collect(),
        };
        for (i, j) in tasks {
            d.blk_i.push(i);
            d.blk_j.push(j);
            d.blk_off.push(d.vals.len() as u32);
            for _ in 0..BLOCK * BLOCK {
                d.vals.push(rng.random_range(-0.5..0.5));
            }
        }
        d
    }

    /// Golden reference: `rhs = rhs0 - Σ L_IJ · x_J` over all tasks.
    pub fn reference(&self, d: &FsData) -> Vec<f32> {
        let mut rhs = d.rhs0.clone();
        for t in 0..d.blk_i.len() {
            let (bi, bj, off) = (
                d.blk_i[t] as usize,
                d.blk_j[t] as usize,
                d.blk_off[t] as usize,
            );
            for col in 0..BLOCK {
                let xj = d.x[bj * BLOCK + col];
                for row in 0..BLOCK {
                    // Column-major block storage.
                    rhs[bi * BLOCK + row] -= d.vals[off + col * BLOCK + row] * xj;
                }
            }
        }
        rhs
    }

    /// Builds the runnable workload for a machine configuration.
    pub fn build(&self, variant: Variant, cfg: &MachineConfig) -> Workload {
        let width = cfg.simd_width;
        assert!(
            BLOCK.is_multiple_of(width) || width > BLOCK,
            "width must divide the block side"
        );
        let threads = cfg.total_threads();
        let d = self.generate();
        let ntasks = d.blk_i.len();

        let mut image = MemImage::new();
        let a_bi = image.alloc_u32(&d.blk_i);
        let a_bj = image.alloc_u32(&d.blk_j);
        let a_off = image.alloc_u32(&d.blk_off);
        let a_vals = image.alloc_f32(&d.vals);
        let a_x = image.alloc_f32(&d.x);
        let a_rhs = image.alloc_f32(&d.rhs0);

        let program = build_program(
            variant,
            width.min(BLOCK),
            threads,
            ntasks,
            [a_bi, a_bj, a_off, a_vals, a_x, a_rhs],
        );

        let expected = self.reference(&d);
        let name = format!(
            "FS/nb{}d{:.2}/{}/w{}",
            self.params.nblocks,
            self.params.density,
            variant.label(),
            width
        );
        Workload {
            name,
            program,
            image,
            validate: Box::new(move |backing| {
                for (i, expect) in expected.iter().enumerate() {
                    let got = backing.read_f32(a_rhs + 4 * i as u64);
                    if !approx_eq(got, *expect, 1e-3, 1e-3) {
                        return Err(format!("rhs[{i}]: got {got}, expected {expect}"));
                    }
                }
                Ok(())
            }),
        }
    }
}

fn build_program(
    variant: Variant,
    width: usize,
    threads: usize,
    ntasks: usize,
    arrays: [u64; 6],
) -> glsc_isa::Program {
    let [a_bi, a_bj, a_off, a_vals, a_x, a_rhs] = arrays;
    let mut b = ProgramBuilder::new();
    let r = Reg::new;
    let v = VReg::new;
    let m = MReg::new;
    let (r_t, r_end, r_t1, r_t2, r_t3) = (r(2), r(3), r(4), r(5), r(6));
    let (r_lbase, r_xbase, r_rhsrow, r_rhs) = (r(7), r(8), r(9), r(10));
    let (v_acc, v_col, v_xj, v_idx, v_y) = (v(0), v(1), v(2), v(3), v(4));
    let (f_todo, f_tmp, f_w) = (m(0), m(1), m(2));

    emit_const_one(&mut b);
    b.li(r_rhs, a_rhs as i64);
    // Lane mask limited to the block side: machine widths above BLOCK
    // leave the extra lanes inactive.
    b.li(r_t1, (1i64 << width) - 1);
    b.r2m(f_w, r_t1);
    emit_partition(&mut b, ntasks, threads, r_t, r_end);

    let outer = b.here();
    let done = b.label();
    b.bge(r_t, r_end, done);
    // Load task descriptor.
    b.shl(r_t1, r_t, 2);
    b.addi(r_t2, r_t1, a_bi as i64);
    b.ld(r_rhsrow, r_t2, 0); // block row I
    b.addi(r_t2, r_t1, a_bj as i64);
    b.ld(r_xbase, r_t2, 0); // block col J
    b.addi(r_t2, r_t1, a_off as i64);
    b.ld(r_lbase, r_t2, 0); // value offset
                            // x_J base address and L block base address.
    b.mul(r_xbase, r_xbase, (BLOCK * 4) as i64);
    b.addi(r_xbase, r_xbase, a_x as i64);
    b.shl(r_lbase, r_lbase, 2);
    b.addi(r_lbase, r_lbase, a_vals as i64);
    // rhs row start element index: I * BLOCK.
    b.mul(r_rhsrow, r_rhsrow, BLOCK as i64);

    for rc in 0..BLOCK / width {
        // acc = 0.
        b.li(r_t1, 0);
        b.vsplat(v_acc, r_t1);
        for col in 0..BLOCK {
            // xj broadcast.
            b.ld(r_t1, r_xbase, (4 * col) as i64);
            b.vsplat(v_xj, r_t1);
            // Column-major: L[col*BLOCK + rc*width ..].
            b.vload(
                v_col,
                r_lbase,
                (4 * (col * BLOCK + rc * width)) as i64,
                Some(f_w),
            );
            b.vfmul(v_col, v_col, v_xj, Some(f_w));
            b.vfadd(v_acc, v_acc, v_col, Some(f_w));
        }
        // Atomic rhs[I*BLOCK + rc*width + lane] -= acc[lane].
        b.addi(r_t1, r_rhsrow, (rc * width) as i64);
        b.sync_on();
        match variant {
            Variant::Glsc => {
                b.vsplat(v_idx, r_t1);
                b.viota(v_col);
                b.vadd(v_idx, v_idx, v_col, Some(f_w));
                b.mmov(f_todo, f_w);
                let retry = b.here();
                b.vgatherlink(f_tmp, v_y, r_rhs, v_idx, f_todo);
                b.vfsub(v_y, v_y, v_acc, Some(f_tmp));
                b.vscattercond(f_tmp, v_y, r_rhs, v_idx, f_tmp);
                b.mxor(f_todo, f_todo, f_tmp);
                b.bmnz(f_todo, retry);
            }
            Variant::Base => {
                b.shl(r_t1, r_t1, 2);
                b.add(r_t1, r_t1, r_rhs);
                for lane in 0..width {
                    b.vextract(r_t2, v_acc, LaneSel::Imm(lane as u8));
                    let retry = b.here();
                    b.ll(r_t3, r_t1, (4 * lane) as i64);
                    b.fsub(r_t3, r_t3, r_t2);
                    b.sc(r_t3, r_t3, r_t1, (4 * lane) as i64);
                    b.beq(r_t3, 0, retry);
                }
            }
        }
        b.sync_off();
    }
    b.addi(r_t, r_t, 1);
    b.jmp(outer);
    b.bind(done).unwrap();
    b.halt();
    b.build().expect("FS program assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_workload;

    fn check(variant: Variant, cores: usize, tpc: usize, width: usize) {
        let cfg = MachineConfig::paper(cores, tpc, width);
        let w = Fs::new(Dataset::Tiny).build(variant, &cfg);
        run_workload(&w, &cfg).expect("runs and validates");
    }

    #[test]
    fn glsc_configs() {
        check(Variant::Glsc, 1, 1, 4);
        check(Variant::Glsc, 2, 2, 4);
        check(Variant::Glsc, 1, 2, 16);
        check(Variant::Glsc, 1, 1, 1);
    }

    #[test]
    fn base_configs() {
        check(Variant::Base, 1, 1, 4);
        check(Variant::Base, 2, 2, 4);
    }

    #[test]
    fn combining_is_effective_on_contiguous_reductions() {
        let cfg = MachineConfig::paper(1, 1, 4);
        let w = Fs::new(Dataset::Tiny).build(Variant::Glsc, &cfg);
        let out = run_workload(&w, &cfg).unwrap();
        // 4 contiguous f32 share a 64-byte line, so combining must save
        // a large share of atomic L1 accesses.
        assert!(
            out.report.gsu.combining_savings() * 2 > out.report.gsu.atomic_elems,
            "expected >50% combining savings: saved {} of {}",
            out.report.gsu.combining_savings(),
            out.report.gsu.atomic_elems
        );
    }

    #[test]
    fn tasks_exist_and_reference_changes_rhs() {
        let fs = Fs::new(Dataset::Tiny);
        let d = fs.generate();
        assert!(!d.blk_i.is_empty());
        let rhs = fs.reference(&d);
        assert_ne!(rhs, d.rhs0);
    }
}
