//! # glsc-kernels — the RMS benchmark suite of the paper
//!
//! Implements the seven Recognition/Mining/Synthesis kernels of §4.2
//! (Tables 2–3) plus the §5.2 microbenchmark, each in two variants:
//!
//! * **Base** — atomic work done with scalar `ll`/`sc` sequences (or scalar
//!   test-and-set locks), everything else SIMD where profitable, exactly as
//!   the paper's baseline with gather/scatter but no atomic vector support;
//! * **GLSC** — atomic work done with `vgatherlink`/`vscattercond`
//!   reductions or the `VLOCK`/`VUNLOCK` idiom of Fig. 3.
//!
//! | Kernel | Atomic pattern | Module |
//! |--------|----------------|--------|
//! | GBC — grid collision broad phase | single-lock critical sections | [`gbc`] |
//! | FS — forward triangular solve | fp-subtract reductions | [`fs`] |
//! | GPS — game physics solver | two-lock critical sections | [`gps`] |
//! | HIP — image histogram | privatized increments (alias detection) | [`hip`] |
//! | SMC — marching-cubes splat | fp-add reductions | [`smc`] |
//! | MFP — max-flow push | two-lock critical sections | [`mfp`] |
//! | TMS — transpose sparse mat-vec | fp-add reductions | [`tms`] |
//! | micro — counter increments | §5.2 scenarios A–D | [`micro`] |
//!
//! Every kernel provides seeded dataset generators (scaled-down synthetic
//! stand-ins for the paper's inputs — see `DESIGN.md` §3.5), a golden Rust
//! reference, and a validation function run after simulation.
//!
//! ```
//! use glsc_kernels::{hip::Hip, Dataset, Variant, run_workload};
//! use glsc_sim::MachineConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = MachineConfig::paper(1, 2, 4);
//! let workload = Hip::new(Dataset::Tiny).build(Variant::Glsc, &cfg);
//! let outcome = run_workload(&workload, &cfg)?;
//! assert!(outcome.report.cycles > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod common;
pub mod fs;
pub mod gbc;
pub mod gps;
pub mod hip;
pub mod mfp;
pub mod micro;
pub mod pattern;
pub mod smc;
pub mod tms;

pub use common::{
    run_workload, run_workload_chaos, Dataset, KernelOutcome, MemImage, Variant, Workload,
    KERNEL_NAMES,
};

/// Why [`build_named`] could not build a workload. Kernel names cross
/// the serve-protocol trust boundary, so an unknown name must be a
/// typed error the admission path can turn into a `Rejected` reply —
/// never a server-side panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KernelError {
    /// Not one of [`KERNEL_NAMES`] and not a `pattern:` spec.
    Unknown(String),
    /// A `pattern:` spec that failed to parse or bounds-check.
    Pattern(glsc_patterns::ParseError),
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::Unknown(name) => write!(f, "unknown kernel {name:?}"),
            KernelError::Pattern(e) => write!(f, "bad pattern spec: {e}"),
        }
    }
}

impl std::error::Error for KernelError {}

impl From<glsc_patterns::ParseError> for KernelError {
    fn from(e: glsc_patterns::ParseError) -> Self {
        KernelError::Pattern(e)
    }
}

/// Builds a named kernel's workload: convenience dispatcher for the
/// benchmark harness and the serve protocol. `name` is one of
/// [`KERNEL_NAMES`], or `pattern:<spec>` where `<spec>` uses the
/// `glsc-patterns` grammar (e.g. `pattern:stride:4x1024` or
/// `pattern:conflict:p=0.25x256*100`). For pattern workloads the
/// dataset selects the iteration tier (`Tiny` scales the spec's
/// iterations down for smoke runs); the spec itself carries its sizes.
pub fn build_named(
    name: &str,
    dataset: Dataset,
    variant: Variant,
    cfg: &glsc_sim::MachineConfig,
) -> Result<Workload, KernelError> {
    if let Some(spec) = name.strip_prefix("pattern:") {
        let p = pattern::Pattern::parse(spec)?.for_dataset(dataset);
        return Ok(p.build(variant, cfg));
    }
    Ok(match name {
        "GBC" => gbc::Gbc::new(dataset).build(variant, cfg),
        "FS" => fs::Fs::new(dataset).build(variant, cfg),
        "GPS" => gps::Gps::new(dataset).build(variant, cfg),
        "HIP" => hip::Hip::new(dataset).build(variant, cfg),
        "SMC" => smc::Smc::new(dataset).build(variant, cfg),
        "MFP" => mfp::Mfp::new(dataset).build(variant, cfg),
        "TMS" => tms::Tms::new(dataset).build(variant, cfg),
        other => return Err(KernelError::Unknown(other.to_string())),
    })
}
