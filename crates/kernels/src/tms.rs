//! TMS — Transpose Matrix-Vector Multiply (Table 2).
//!
//! Computes `y = Aᵀx` for a sparse matrix `A`: every nonzero `A[i][j]` is
//! multiplied by `x[i]` and reduced into `y[j]`. Nonzeros are divided
//! evenly among threads; elements are processed `SIMD-width` at a time with
//! gathers for `x`, and the reduction into `y` uses **atomic fp-add**:
//!
//! * **Base**: per-lane scalar `ll` / `fadd` / `sc` retry loops (Fig. 2);
//! * **GLSC**: the Fig. 3(A) gather-link / `vfadd` / scatter-cond loop.
//!
//! The paper's matrices (21616×67841 @ 0.87% and 209614×41177 @ 0.01%) are
//! scaled down to keep simulated runs tractable; the generator preserves
//! the traits that matter — row-major nonzero traversal (so `x` gathers
//! have locality) and near-uniform column distribution (so reduction
//! conflicts are rare, matching TMS's ~0% failure rate in Table 4).

use crate::common::{
    approx_eq, emit_const_one, emit_partition, Dataset, MemImage, Variant, Workload,
};
use glsc_isa::{LaneSel, MReg, ProgramBuilder, Reg, VReg};
use glsc_rng::rngs::StdRng;
use glsc_rng::{Rng, SeedableRng};
use glsc_sim::MachineConfig;

/// Input parameters for [`Tms`].
#[derive(Clone, Debug)]
pub struct TmsParams {
    /// Rows of `A` (length of `x`).
    pub rows: usize,
    /// Columns of `A` (length of `y`).
    pub cols: usize,
    /// Nonzeros (padded to a multiple of 256 with explicit zeros).
    pub nnz: usize,
    /// RNG seed.
    pub seed: u64,
}

/// A generated sparse matrix in coordinate form, row-major ordered.
#[derive(Clone, Debug)]
pub struct TmsData {
    /// Row index per nonzero.
    pub row: Vec<u32>,
    /// Column index per nonzero.
    pub col: Vec<u32>,
    /// Value per nonzero.
    pub val: Vec<f32>,
    /// The dense input vector.
    pub x: Vec<f32>,
}

/// The TMS benchmark.
#[derive(Clone, Debug)]
pub struct Tms {
    params: TmsParams,
}

impl Tms {
    /// Benchmark instance for a dataset of Table 3 (scaled).
    pub fn new(dataset: Dataset) -> Self {
        let params = match dataset {
            // 21616x67841, 0.87% density -> denser, mid-size.
            Dataset::A => TmsParams {
                rows: 1024,
                cols: 3072,
                nnz: 24 * 1024,
                seed: 11,
            },
            // 209614x41177, 0.01% density -> sparser, more rows.
            Dataset::B => TmsParams {
                rows: 4096,
                cols: 2048,
                nnz: 16 * 1024,
                seed: 12,
            },
            Dataset::Tiny => TmsParams {
                rows: 64,
                cols: 64,
                nnz: 512,
                seed: 13,
            },
        };
        Self { params }
    }

    /// Benchmark instance with explicit parameters.
    pub fn with_params(params: TmsParams) -> Self {
        Self { params }
    }

    /// Generates the matrix and input vector.
    pub fn generate(&self) -> TmsData {
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let n = self.params.nnz.next_multiple_of(256);
        let mut row: Vec<u32> = (0..self.params.nnz)
            .map(|_| rng.random_range(0..self.params.rows as u32))
            .collect();
        row.sort_unstable(); // row-major traversal, as in CSR
        let mut col: Vec<u32> = (0..self.params.nnz)
            .map(|_| rng.random_range(0..self.params.cols as u32))
            .collect();
        let mut val: Vec<f32> = (0..self.params.nnz)
            .map(|_| rng.random_range(0.0..1.0))
            .collect();
        // Padding entries contribute 0.0 to y[0].
        row.resize(n, 0);
        col.resize(n, 0);
        val.resize(n, 0.0);
        let x = (0..self.params.rows)
            .map(|_| rng.random_range(0.0..1.0))
            .collect();
        TmsData { row, col, val, x }
    }

    /// Golden reference `y = Aᵀx`.
    pub fn reference(&self, data: &TmsData) -> Vec<f32> {
        let mut y = vec![0.0f32; self.params.cols];
        for k in 0..data.val.len() {
            y[data.col[k] as usize] += data.val[k] * data.x[data.row[k] as usize];
        }
        y
    }

    /// Builds the runnable workload for a machine configuration.
    pub fn build(&self, variant: Variant, cfg: &MachineConfig) -> Workload {
        let width = cfg.simd_width;
        let threads = cfg.total_threads();
        let data = self.generate();
        let n = data.val.len();

        let mut image = MemImage::new();
        let a_row = image.alloc_u32(&data.row);
        let a_col = image.alloc_u32(&data.col);
        let a_val = image.alloc_f32(&data.val);
        let a_x = image.alloc_f32(&data.x);
        let a_y = image.alloc_zeroed(self.params.cols);

        let program = build_program(variant, width, threads, n, a_row, a_col, a_val, a_x, a_y);

        let expected = self.reference(&data);
        let cols = self.params.cols;
        let name = format!(
            "TMS/{}x{}nnz{}/{}/w{}",
            self.params.rows,
            self.params.cols,
            self.params.nnz,
            variant.label(),
            width
        );
        Workload {
            name,
            program,
            image,
            validate: Box::new(move |backing| {
                for (j, expect) in expected.iter().enumerate().take(cols) {
                    let got = backing.read_f32(a_y + 4 * j as u64);
                    if !approx_eq(got, *expect, 1e-3, 1e-4) {
                        return Err(format!("y[{j}]: got {got}, expected {expect}"));
                    }
                }
                Ok(())
            }),
        }
    }
}

impl Tms {
    /// Builds the **software-alternative** baseline the paper mentions in
    /// §4.2: a *segmented reduction*. Each thread's nonzeros are pre-sorted
    /// by column, and the scalar kernel accumulates runs of equal columns
    /// in a register, issuing **one** `ll`/`fadd`/`sc` per run instead of
    /// one per element. This trades preprocessing (the sort) and scalar
    /// execution for far fewer atomic operations — the kind of software
    /// technique GLSC competes against ("segmented scan, pre-hashing, and
    /// privatization ... used when beneficial").
    pub fn build_segmented(&self, cfg: &MachineConfig) -> Workload {
        let threads = cfg.total_threads();
        let mut data = self.generate();
        let n = data.val.len();
        // Pre-sort each thread's partition by column (the preprocessing
        // step of the segmented reduction).
        for t in 0..threads {
            let (s, e) = crate::common::chunk_bounds(n, threads, t);
            let mut triple: Vec<(u32, u32, f32)> = (s..e)
                .map(|k| (data.col[k], data.row[k], data.val[k]))
                .collect();
            triple.sort_by_key(|x| x.0);
            for (i, (c, r, v)) in triple.into_iter().enumerate() {
                data.col[s + i] = c;
                data.row[s + i] = r;
                data.val[s + i] = v;
            }
        }

        let mut image = MemImage::new();
        let a_row = image.alloc_u32(&data.row);
        let a_col = image.alloc_u32(&data.col);
        let a_val = image.alloc_f32(&data.val);
        let a_x = image.alloc_f32(&data.x);
        let a_y = image.alloc_zeroed(self.params.cols);

        let program = build_segmented_program(threads, n, a_row, a_col, a_val, a_x, a_y);

        let expected = self.reference(&data);
        let cols = self.params.cols;
        let name = format!(
            "TMS-seg/{}x{}nnz{}",
            self.params.rows, self.params.cols, self.params.nnz
        );
        Workload {
            name,
            program,
            image,
            validate: Box::new(move |backing| {
                for (j, expect) in expected.iter().enumerate().take(cols) {
                    let got = backing.read_f32(a_y + 4 * j as u64);
                    if !approx_eq(got, *expect, 1e-3, 1e-4) {
                        return Err(format!("y[{j}]: got {got}, expected {expect}"));
                    }
                }
                Ok(())
            }),
        }
    }
}

/// The scalar segmented-reduction kernel: one atomic per column run.
fn build_segmented_program(
    threads: usize,
    n: usize,
    a_row: u64,
    a_col: u64,
    a_val: u64,
    a_x: u64,
    a_y: u64,
) -> glsc_isa::Program {
    let mut b = ProgramBuilder::new();
    let r = Reg::new;
    let (r_k, r_end, r_t1) = (r(2), r(3), r(4));
    let (r_col, r_cur, r_acc, r_p) = (r(5), r(6), r(7), r(8));
    let (r_x, r_y, r_t2, r_t3) = (r(9), r(10), r(11), r(12));

    emit_const_one(&mut b);
    b.li(r_x, a_x as i64);
    b.li(r_y, a_y as i64);
    emit_partition(&mut b, n, threads, r_k, r_end);
    // Empty partitions jump straight to the end.
    let done = b.label();
    b.bge(r_k, r_end, done);
    // Prime: cur_col = col[start]; acc = 0.
    b.shl(r_t1, r_k, 2);
    b.addi(r_t2, r_t1, a_col as i64);
    b.ld(r_cur, r_t2, 0);
    b.li(r_acc, 0);
    let top = b.here();
    let flush_tail = b.label();
    b.bge(r_k, r_end, flush_tail);
    b.shl(r_t1, r_k, 2);
    // p = val[k] * x[row[k]].
    b.addi(r_t2, r_t1, a_row as i64);
    b.ld(r_t2, r_t2, 0);
    b.shl(r_t2, r_t2, 2);
    b.add(r_t2, r_t2, r_x);
    b.ld(r_t2, r_t2, 0); // x[row]
    b.addi(r_t3, r_t1, a_val as i64);
    b.ld(r_t3, r_t3, 0); // val
    b.fmul(r_p, r_t2, r_t3);
    // col = col[k]; same run -> accumulate, else flush.
    b.addi(r_t2, r_t1, a_col as i64);
    b.ld(r_col, r_t2, 0);
    let same = b.label();
    b.beq(r_col, r_cur, same);
    // Flush acc into y[cur] atomically (one atomic per run).
    b.shl(r_t2, r_cur, 2);
    b.add(r_t2, r_t2, r_y);
    b.sync_on();
    let retry = b.here();
    b.ll(r_t3, r_t2, 0);
    b.fadd(r_t3, r_t3, r_acc);
    b.sc(r_t3, r_t3, r_t2, 0);
    b.beq(r_t3, 0, retry);
    b.sync_off();
    b.mv(r_cur, r_col);
    b.li(r_acc, 0);
    b.bind(same).unwrap();
    b.fadd(r_acc, r_acc, r_p);
    b.addi(r_k, r_k, 1);
    b.jmp(top);
    // Tail flush.
    b.bind(flush_tail).unwrap();
    b.shl(r_t2, r_cur, 2);
    b.add(r_t2, r_t2, r_y);
    b.sync_on();
    let retry2 = b.here();
    b.ll(r_t3, r_t2, 0);
    b.fadd(r_t3, r_t3, r_acc);
    b.sc(r_t3, r_t3, r_t2, 0);
    b.beq(r_t3, 0, retry2);
    b.sync_off();
    b.bind(done).unwrap();
    b.halt();
    b.build().expect("segmented TMS program assembles")
}

#[allow(clippy::too_many_arguments)]
fn build_program(
    variant: Variant,
    width: usize,
    threads: usize,
    n: usize,
    a_row: u64,
    a_col: u64,
    a_val: u64,
    a_x: u64,
    a_y: u64,
) -> glsc_isa::Program {
    let mut b = ProgramBuilder::new();
    let r = Reg::new;
    let v = VReg::new;
    let m = MReg::new;
    let (r_i, r_end, r_addr, r_t1, r_t2, r_t3) = (r(2), r(3), r(4), r(5), r(6), r(7));
    let (r_x, r_y) = (r(8), r(9));
    let (v_row, v_col, v_val, v_x, v_p, v_y) = (v(0), v(1), v(2), v(3), v(4), v(5));
    let (f_todo, f_tmp) = (m(0), m(1));

    emit_const_one(&mut b);
    b.li(r_x, a_x as i64);
    b.li(r_y, a_y as i64);
    emit_partition(&mut b, n, threads, r_i, r_end);

    let outer = b.here();
    let done = b.label();
    b.bge(r_i, r_end, done);
    b.shl(r_addr, r_i, 2);
    // Load this chunk of nonzeros.
    b.addi(r_t1, r_addr, a_val as i64);
    b.vload(v_val, r_t1, 0, None);
    b.addi(r_t1, r_addr, a_row as i64);
    b.vload(v_row, r_t1, 0, None);
    b.addi(r_t1, r_addr, a_col as i64);
    b.vload(v_col, r_t1, 0, None);
    // Gather x[row] and form the products.
    b.vgather(v_x, r_x, v_row, None);
    b.vfmul(v_p, v_val, v_x, None);
    // Atomic reduction into y[col].
    b.sync_on();
    match variant {
        Variant::Glsc => {
            b.mall(f_todo);
            let retry = b.here();
            b.vgatherlink(f_tmp, v_y, r_y, v_col, f_todo);
            b.vfadd(v_y, v_y, v_p, Some(f_tmp));
            b.vscattercond(f_tmp, v_y, r_y, v_col, f_tmp);
            b.mxor(f_todo, f_todo, f_tmp);
            b.bmnz(f_todo, retry);
        }
        Variant::Base => {
            for lane in 0..width {
                b.vextract(r_t1, v_col, LaneSel::Imm(lane as u8));
                b.vextract(r_t2, v_p, LaneSel::Imm(lane as u8));
                b.shl(r_t1, r_t1, 2);
                b.add(r_t1, r_t1, r_y);
                let retry = b.here();
                b.ll(r_t3, r_t1, 0);
                b.fadd(r_t3, r_t3, r_t2);
                b.sc(r_t3, r_t3, r_t1, 0);
                b.beq(r_t3, 0, retry);
            }
        }
    }
    b.sync_off();
    b.addi(r_i, r_i, width as i64);
    b.jmp(outer);
    b.bind(done).unwrap();
    b.halt();
    b.build().expect("TMS program assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_workload;

    fn check(variant: Variant, cores: usize, tpc: usize, width: usize) {
        let cfg = MachineConfig::paper(cores, tpc, width);
        let w = Tms::new(Dataset::Tiny).build(variant, &cfg);
        run_workload(&w, &cfg).expect("runs and validates");
    }

    #[test]
    fn glsc_configs() {
        check(Variant::Glsc, 1, 1, 4);
        check(Variant::Glsc, 2, 2, 4);
        check(Variant::Glsc, 1, 2, 16);
        check(Variant::Glsc, 1, 2, 1);
    }

    #[test]
    fn base_configs() {
        check(Variant::Base, 1, 1, 4);
        check(Variant::Base, 2, 2, 4);
        check(Variant::Base, 1, 2, 1);
    }

    #[test]
    fn reference_is_deterministic_and_nontrivial() {
        let t = Tms::new(Dataset::Tiny);
        let d = t.generate();
        let y = t.reference(&d);
        assert!(y.iter().any(|&v| v != 0.0));
        assert_eq!(y, t.reference(&d));
    }

    #[test]
    fn glsc_reduces_instructions_vs_base() {
        // The headline mechanism of Table 4: same work, fewer dynamic
        // instructions with GLSC at width 4.
        let cfg = MachineConfig::paper(1, 1, 4);
        let wg = Tms::new(Dataset::Tiny).build(Variant::Glsc, &cfg);
        let wb = Tms::new(Dataset::Tiny).build(Variant::Base, &cfg);
        let og = run_workload(&wg, &cfg).unwrap();
        let ob = run_workload(&wb, &cfg).unwrap();
        assert!(
            og.report.total_instructions() < ob.report.total_instructions(),
            "GLSC {} !< Base {}",
            og.report.total_instructions(),
            ob.report.total_instructions()
        );
        assert!(
            og.report.cycles < ob.report.cycles,
            "GLSC must be faster at w4"
        );
    }

    #[test]
    fn segmented_variant_validates_and_uses_fewer_atomics() {
        let cfg = MachineConfig::paper(2, 2, 4);
        let tms = Tms::new(Dataset::Tiny);
        let seg = run_workload(&tms.build_segmented(&cfg), &cfg).unwrap();
        let base = run_workload(&tms.build(Variant::Base, &cfg), &cfg).unwrap();
        assert!(
            seg.report.lsu.lls < base.report.lsu.lls,
            "segmentation must issue fewer atomics: {} vs {}",
            seg.report.lsu.lls,
            base.report.lsu.lls
        );
    }

    #[test]
    fn base_sc_retries_still_produce_correct_result() {
        // With a tiny y and many threads, Base ll/sc loops conflict and
        // retry; validation inside run_workload proves correctness.
        let cfg = MachineConfig::paper(4, 2, 4);
        let w = Tms::new(Dataset::Tiny).build(Variant::Base, &cfg);
        let out = run_workload(&w, &cfg).unwrap();
        assert!(out.report.lsu.scs >= out.report.lsu.sc_successes);
    }
}
