//! GPS — Game Physics Solver (Table 2).
//!
//! An iterative constraint relaxation from a game physics engine: each
//! constraint couples one or two objects and must update them atomically
//! ("multiple lock critical section" in Table 3 — two locks per
//! SIMD-element of work). Constraints are divided among threads;
//! iterations sweep each thread's constraints repeatedly.
//!
//! The update is a symmetric relaxation `delta = k (v[a] − v[b])`,
//! `v[a] -= delta`, `v[b] += delta`, which conserves `Σv` — the invariant
//! the validator checks (a relaxation's exact result is schedule-dependent
//! by design, so a bitwise golden output does not exist; the paper's
//! solver has the same property).
//!
//! * **Base**: per-constraint scalar code; locks taken in index order
//!   (deadlock-free), spin with `ll`/`sc`;
//! * **GLSC**: `VLOCK` both lock sets conditionally (Fig. 3(B)): lanes
//!   that obtained their first lock try the second; lanes that fail
//!   release the first and retry — no deadlock by construction (§3.2).
//!   As in the paper, each thread's constraints are pre-grouped into
//!   vectors of independent constraints to keep scatters alias-free in
//!   the common case (lock exclusivity guarantees correctness anyway).

use crate::common::{
    approx_eq, chunk_bounds, emit_backoff, emit_const_one, emit_partition, emit_scalar_lock,
    emit_scalar_unlock, emit_vlock, emit_vunlock, interleave_for_width, Dataset, MemImage,
    VLockRegs, Variant, Workload,
};
use glsc_isa::{MReg, ProgramBuilder, Reg, VReg};
use glsc_rng::rngs::StdRng;
use glsc_rng::{Rng, SeedableRng};
use glsc_sim::MachineConfig;

/// Relaxation factor (kept as an exact power of two for fp friendliness).
pub const RELAX: f32 = 0.25;

/// Input parameters for [`Gps`].
#[derive(Clone, Debug)]
pub struct GpsParams {
    /// Number of simulated objects.
    pub objects: usize,
    /// Number of constraints (padded to a multiple of 256 with self-loop
    /// no-op constraints on dedicated padding objects).
    pub constraints: usize,
    /// Solver sweeps.
    pub iterations: usize,
    /// RNG seed.
    pub seed: u64,
}

/// The GPS benchmark.
#[derive(Clone, Debug)]
pub struct Gps {
    params: GpsParams,
}

impl Gps {
    /// Benchmark instance for a dataset of Table 3 (scaled).
    pub fn new(dataset: Dataset) -> Self {
        let params = match dataset {
            // 625 objects.
            Dataset::A => GpsParams {
                objects: 1024,
                constraints: 2048,
                iterations: 4,
                seed: 51,
            },
            // 1600 objects.
            Dataset::B => GpsParams {
                objects: 2048,
                constraints: 4096,
                iterations: 4,
                seed: 52,
            },
            Dataset::Tiny => GpsParams {
                objects: 512,
                constraints: 512,
                iterations: 2,
                seed: 53,
            },
        };
        Self { params }
    }

    /// Benchmark instance with explicit parameters.
    pub fn with_params(params: GpsParams) -> Self {
        Self { params }
    }

    /// Generates constraints `(lo, hi)` with `lo < hi` plus initial state.
    /// Within each thread's partition, constraints are greedily reordered
    /// so aligned SIMD groups touch distinct objects where possible.
    pub fn generate(&self, threads: usize, width: usize) -> (Vec<u32>, Vec<u32>, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let n = self.params.constraints.next_multiple_of(256);
        // Constraints couple *nearby* objects, as in a physics scene where
        // joints/contacts connect spatial neighbours; with the sorted
        // partition below this keeps both locks of a constraint inside
        // one thread's object range (paper GPS failure rate ~0%).
        let span = 8u32.min(self.params.objects as u32 - 1).max(1);
        let mut pairs: Vec<(u32, u32)> = (0..self.params.constraints)
            .map(|_| {
                let a = rng.random_range(0..self.params.objects as u32);
                let off = rng.random_range(1..=span);
                if a + off < self.params.objects as u32 {
                    (a, a + off)
                } else {
                    // Clamp at node 0 for small graphs (keeps u < v).
                    (a - off.min(a), a)
                }
            })
            .collect();
        // Threads get contiguous chunks; sorting by the first object packs
        // each thread's constraints into a narrow object range, minimizing
        // cross-thread lock conflicts (the paper partitions work "to
        // minimize contention on locks"; its GPS failure rate is ~0%).
        pairs.sort_unstable();
        // Padding constraints couple dedicated per-slot padding objects, so
        // they relax to a no-op state without perturbing real objects.
        for k in self.params.constraints..n {
            let base = (self.params.objects + 2 * (k - self.params.constraints)) as u32;
            pairs.push((base, base + 1));
        }
        // Independence grouping within each thread's chunk: the transpose
        // interleave spreads sorted neighbours across different SIMD
        // groups (paper: constraints "reordered into groups of independent
        // constraints").
        for t in 0..threads {
            let (s, e) = chunk_bounds(n, threads, t);
            interleave_for_width(&mut pairs[s..e], width);
        }
        let lo: Vec<u32> = pairs.iter().map(|p| p.0).collect();
        let hi: Vec<u32> = pairs.iter().map(|p| p.1).collect();
        let total_objects = self.params.objects + 2 * (n - self.params.constraints);
        let state: Vec<f32> = (0..total_objects)
            .map(|_| rng.random_range(-10.0..10.0))
            .collect();
        (lo, hi, state)
    }

    /// Builds the runnable workload for a machine configuration.
    pub fn build(&self, variant: Variant, cfg: &MachineConfig) -> Workload {
        let width = cfg.simd_width;
        let threads = cfg.total_threads();
        let (lo, hi, state) = self.generate(threads, width);
        let n = lo.len();
        let total_objects = state.len();
        let initial_sum: f64 = state.iter().map(|&x| x as f64).sum();

        let mut image = MemImage::new();
        let a_lo = image.alloc_u32(&lo);
        let a_hi = image.alloc_u32(&hi);
        let a_v = image.alloc_f32(&state);
        let a_lock = image.alloc_zeroed(total_objects);

        let program = build_program(
            variant,
            width,
            threads,
            n,
            self.params.iterations,
            a_lo,
            a_hi,
            a_v,
            a_lock,
        );

        let name = format!(
            "GPS/o{}c{}/{}/w{}",
            self.params.objects,
            self.params.constraints,
            variant.label(),
            width
        );
        Workload {
            name,
            program,
            image,
            validate: Box::new(move |backing| {
                // Conservation: every constraint moves +delta/-delta.
                let final_sum: f64 = (0..total_objects)
                    .map(|i| backing.read_f32(a_v + 4 * i as u64) as f64)
                    .sum();
                if !approx_eq(final_sum as f32, initial_sum as f32, 1e-3, 1e-2) {
                    return Err(format!(
                        "sum not conserved: {final_sum} vs initial {initial_sum}"
                    ));
                }
                for i in 0..total_objects as u64 {
                    if backing.read_u32(a_lock + 4 * i) != 0 {
                        return Err(format!("lock {i} still held"));
                    }
                    let val = backing.read_f32(a_v + 4 * i);
                    if !val.is_finite() {
                        return Err(format!("state[{i}] diverged: {val}"));
                    }
                }
                Ok(())
            }),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn build_program(
    variant: Variant,
    width: usize,
    threads: usize,
    n: usize,
    iterations: usize,
    a_lo: u64,
    a_hi: u64,
    a_v: u64,
    a_lock: u64,
) -> glsc_isa::Program {
    let mut b = ProgramBuilder::new();
    let r = Reg::new;
    let v = VReg::new;
    let m = MReg::new;

    emit_const_one(&mut b);
    let (r_i, r_end, r_start, r_iter) = (r(2), r(3), r(12), r(13));
    let (r_t1, r_t2, r_t3, r_t4, r_t5) = (r(4), r(5), r(6), r(7), r(11));
    let (r_lock, r_v, r_relax) = (r(8), r(9), r(10));
    b.li(r_lock, a_lock as i64);
    b.li(r_v, a_v as i64);
    b.li(r_relax, RELAX.to_bits() as i64);
    emit_partition(&mut b, n, threads, r_start, r_end);
    b.li(r_iter, 0);
    let iter_top = b.here();
    b.mv(r_i, r_start);

    match variant {
        Variant::Base => {
            let outer = b.here();
            let iter_next = b.label();
            b.bge(r_i, r_end, iter_next);
            // Addresses of the two locks / objects.
            b.shl(r_t1, r_i, 2);
            b.addi(r_t2, r_t1, a_lo as i64);
            b.ld(r_t2, r_t2, 0); // lo object
            b.addi(r_t3, r_t1, a_hi as i64);
            b.ld(r_t3, r_t3, 0); // hi object
            b.shl(r_t2, r_t2, 2);
            b.shl(r_t3, r_t3, 2);
            // Lock lo then hi (global order -> deadlock free).
            b.add(r_t4, r_t2, r_lock);
            b.sync_on();
            emit_scalar_lock(&mut b, r_t4, r_t5, r(14));
            b.sync_off();
            b.add(r_t4, r_t3, r_lock);
            b.sync_on();
            emit_scalar_lock(&mut b, r_t4, r_t5, r(14));
            b.sync_off();
            // Relax: delta = k*(v[lo]-v[hi]).
            b.add(r_t2, r_t2, r_v);
            b.add(r_t3, r_t3, r_v);
            b.ld(r_t5, r_t2, 0);
            b.ld(r_t4, r_t3, 0);
            let (r_d, r_nv) = (r(15), r(16));
            b.fsub(r_d, r_t5, r_t4);
            b.fmul(r_d, r_d, r_relax);
            b.fsub(r_nv, r_t5, r_d);
            b.st(r_nv, r_t2, 0);
            b.fadd(r_nv, r_t4, r_d);
            b.st(r_nv, r_t3, 0);
            // Unlock hi then lo.
            b.sub(r_t2, r_t2, r_v);
            b.sub(r_t3, r_t3, r_v);
            b.add(r_t4, r_t3, r_lock);
            b.sync_on();
            emit_scalar_unlock(&mut b, r_t4, r_t5);
            b.add(r_t4, r_t2, r_lock);
            emit_scalar_unlock(&mut b, r_t4, r_t5);
            b.sync_off();
            b.addi(r_i, r_i, 1);
            b.jmp(outer);
            b.bind(iter_next).unwrap();
        }
        Variant::Glsc => {
            let (v_lo, v_hi, v_a, v_b2, v_d, v_k) = (v(0), v(1), v(2), v(3), v(7), v(8));
            let regs = VLockRegs {
                vtmp: v(4),
                vone: v(5),
                vzero: v(6),
                ftmp1: m(2),
                ftmp2: m(3),
            };
            let (f_todo, f, f_hi, f_rel) = (m(0), m(1), m(4), m(5));
            b.vsplat(regs.vone, r(31));
            b.li(r_t1, 0);
            b.vsplat(regs.vzero, r_t1);
            b.vsplat(v_k, r_relax);
            b.mv(r(17), r(0)); // backoff LCG state
            let outer = b.here();
            let iter_next = b.label();
            b.bge(r_i, r_end, iter_next);
            b.shl(r_t1, r_i, 2);
            b.addi(r_t2, r_t1, a_lo as i64);
            b.vload(v_lo, r_t2, 0, None);
            b.addi(r_t2, r_t1, a_hi as i64);
            b.vload(v_hi, r_t2, 0, None);
            b.sync_on();
            b.mall(f_todo);
            let retry = b.here();
            b.mmov(f, f_todo);
            // First lock set (lo indices).
            emit_vlock(&mut b, r_lock, v_lo, f, regs);
            // Second lock set under the lanes that hold the first.
            b.mmov(f_hi, f);
            emit_vlock(&mut b, r_lock, v_hi, f_hi, regs);
            // Release lo where hi failed.
            b.mnot(f_rel, f_hi);
            b.mand(f_rel, f_rel, f);
            emit_vunlock(&mut b, r_lock, v_lo, f_rel, regs);
            // Critical section under f_hi: relax the pair.
            b.vgather(v_a, r_v, v_lo, Some(f_hi));
            b.vgather(v_b2, r_v, v_hi, Some(f_hi));
            b.vfsub(v_d, v_a, v_b2, Some(f_hi));
            b.vfmul(v_d, v_d, v_k, Some(f_hi));
            b.vfsub(v_a, v_a, v_d, Some(f_hi));
            b.vfadd(v_b2, v_b2, v_d, Some(f_hi));
            b.vscatter(v_a, r_v, v_lo, Some(f_hi));
            b.vscatter(v_b2, r_v, v_hi, Some(f_hi));
            // Unlock both sets.
            emit_vunlock(&mut b, r_lock, v_hi, f_hi, regs);
            emit_vunlock(&mut b, r_lock, v_lo, f_hi, regs);
            b.mxor(f_todo, f_todo, f_hi);
            let cont = b.label();
            b.bmz(f_todo, cont);
            // Symmetry-breaking backoff before retrying failed lanes.
            emit_backoff(&mut b, r(17), r_t1);
            b.jmp(retry);
            b.bind(cont).unwrap();
            b.sync_off();
            b.addi(r_i, r_i, width as i64);
            b.jmp(outer);
            b.bind(iter_next).unwrap();
        }
    }
    b.addi(r_iter, r_iter, 1);
    b.blt(r_iter, iterations as i64, iter_top);
    b.halt();
    b.build().expect("GPS program assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_workload;

    fn check(variant: Variant, cores: usize, tpc: usize, width: usize) {
        let cfg = MachineConfig::paper(cores, tpc, width);
        let w = Gps::new(Dataset::Tiny).build(variant, &cfg);
        run_workload(&w, &cfg).expect("runs and validates");
    }

    #[test]
    fn glsc_configs() {
        check(Variant::Glsc, 1, 1, 4);
        check(Variant::Glsc, 2, 2, 4);
        check(Variant::Glsc, 1, 2, 16);
        check(Variant::Glsc, 1, 1, 1);
    }

    #[test]
    fn base_configs() {
        check(Variant::Base, 1, 1, 4);
        check(Variant::Base, 2, 2, 4);
        check(Variant::Base, 4, 2, 1);
    }

    #[test]
    fn grouping_separates_objects_within_vectors() {
        let gps = Gps::new(Dataset::Tiny);
        let (lo, hi, _) = gps.generate(1, 4);
        // Count aligned 4-groups with internal object collisions; grouping
        // should make them rare (not necessarily zero).
        let mut collisions = 0;
        for chunk in lo.chunks(4).zip(hi.chunks(4)) {
            let mut seen = std::collections::HashSet::new();
            let mut clash = false;
            for (a, bb) in chunk.0.iter().zip(chunk.1) {
                clash |= !seen.insert(*a) || !seen.insert(*bb);
            }
            collisions += clash as usize;
        }
        assert!(
            collisions * 4 < lo.len() / 4,
            "too many colliding groups: {collisions}"
        );
    }

    #[test]
    fn two_lock_protocol_makes_progress_under_contention() {
        // Few objects + many threads: heavy lock contention, must converge.
        let cfg = MachineConfig::paper(2, 4, 4);
        let w = Gps::with_params(GpsParams {
            objects: 16,
            constraints: 256,
            iterations: 2,
            seed: 99,
        })
        .build(Variant::Glsc, &cfg);
        run_workload(&w, &cfg).expect("no deadlock/livelock");
    }
}
