//! SMC — Surface Extraction via Marching Cubes (Table 2).
//!
//! The density-splat phase of a particle fluid surface extraction: each
//! particle adds a trilinearly weighted contribution to the **eight grid
//! nodes** of its cell. Particles are divided among threads and processed
//! `SIMD-width` at a time; node updates are **atomic fp-add reductions**
//! (different particles — in the same or different threads — touch shared
//! nodes):
//!
//! * **Base**: per-lane scalar `ll`/`fadd`/`sc` retry loops per corner;
//! * **GLSC**: a gather-link / `vfadd` / scatter-cond loop per corner.
//!
//! The paper's particle sets (32 K / 256 K fluid particles) are replaced by
//! seeded synthetic particles; dataset A uses a larger grid (low node
//! contention), dataset B a small grid (high contention and intra-vector
//! aliasing), preserving the access-pattern contrast.

use crate::common::{
    approx_eq, emit_const_one, emit_partition, Dataset, MemImage, Variant, Workload,
};
use glsc_isa::{LaneSel, MReg, ProgramBuilder, Reg, VReg};
use glsc_rng::rngs::StdRng;
use glsc_rng::{Rng, SeedableRng};
use glsc_sim::MachineConfig;

/// Input parameters for [`Smc`].
#[derive(Clone, Debug)]
pub struct SmcParams {
    /// Number of particles (padded to a multiple of 256 with zero-weight
    /// particles).
    pub particles: usize,
    /// Grid side; the node array has `grid³` density values.
    pub grid: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Generated particles: integer cell coordinates plus trilinear fractions.
#[derive(Clone, Debug)]
pub struct SmcData {
    /// Cell x per particle (in `0..grid-1`).
    pub ix: Vec<u32>,
    /// Cell y per particle.
    pub iy: Vec<u32>,
    /// Cell z per particle.
    pub iz: Vec<u32>,
    /// Fractional x position within the cell.
    pub fx: Vec<f32>,
    /// Fractional y position.
    pub fy: Vec<f32>,
    /// Fractional z position.
    pub fz: Vec<f32>,
}

/// The SMC benchmark.
#[derive(Clone, Debug)]
pub struct Smc {
    params: SmcParams,
}

impl Smc {
    /// Benchmark instance for a dataset of Table 3 (scaled).
    pub fn new(dataset: Dataset) -> Self {
        let params = match dataset {
            // 32K particles -> larger grid, low contention.
            Dataset::A => SmcParams {
                particles: 4096,
                grid: 24,
                seed: 21,
            },
            // 256K particles -> small grid, heavy sharing.
            Dataset::B => SmcParams {
                particles: 8192,
                grid: 10,
                seed: 22,
            },
            Dataset::Tiny => SmcParams {
                particles: 512,
                grid: 6,
                seed: 23,
            },
        };
        Self { params }
    }

    /// Benchmark instance with explicit parameters.
    pub fn with_params(params: SmcParams) -> Self {
        Self { params }
    }

    /// Generates the particle set: spatially sorted for thread locality,
    /// then interleaved per thread chunk so SIMD groups splat into
    /// non-adjacent cells.
    pub fn generate(&self, threads: usize, width: usize) -> SmcData {
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let n = self.params.particles.next_multiple_of(256);
        let cell_max = (self.params.grid - 1) as u32;
        let mut d = SmcData {
            ix: Vec::with_capacity(n),
            iy: Vec::with_capacity(n),
            iz: Vec::with_capacity(n),
            fx: Vec::with_capacity(n),
            fy: Vec::with_capacity(n),
            fz: Vec::with_capacity(n),
        };
        // Generate, then sort particles spatially: the paper divides
        // particles among threads after spatial construction, so each
        // thread splats into its own grid region and cross-thread node
        // conflicts are rare (SMC failure ~0% in Table 4).
        let mut parts: Vec<(u32, u32, u32, f32, f32, f32)> = (0..self.params.particles)
            .map(|_| {
                (
                    rng.random_range(0..cell_max),
                    rng.random_range(0..cell_max),
                    rng.random_range(0..cell_max),
                    rng.random_range(0.0..1.0),
                    rng.random_range(0.0..1.0),
                    rng.random_range(0.0..1.0),
                )
            })
            .collect();
        parts.sort_by_key(|p| (p.0, p.1, p.2));
        for t in 0..threads {
            let (s, e) = crate::common::chunk_bounds(n, threads, t);
            let e = e.min(parts.len());
            if s < e {
                crate::common::interleave_for_width(&mut parts[s..e], width);
            }
        }
        for p in parts.iter().copied() {
            d.ix.push(p.0);
            d.iy.push(p.1);
            d.iz.push(p.2);
            d.fx.push(p.3);
            d.fy.push(p.4);
            d.fz.push(p.5);
        }
        // Padding particles sit at cell (0,0,0) with zero fractions; the
        // golden reference includes their (small, deterministic)
        // contribution so program and reference stay bit-for-bit
        // consistent.
        for _ in parts.len()..n {
            d.ix.push(0);
            d.iy.push(0);
            d.iz.push(0);
            d.fx.push(0.0);
            d.fy.push(0.0);
            d.fz.push(0.0);
        }
        d
    }

    /// Golden reference density field (includes padding contributions,
    /// mirroring the simulated program exactly).
    pub fn reference(&self, d: &SmcData) -> Vec<f32> {
        let g = self.params.grid;
        let mut density = vec![0.0f32; g * g * g];
        for k in 0..d.ix.len() {
            for corner in 0..8u32 {
                let (dx, dy, dz) = (corner & 1, (corner >> 1) & 1, (corner >> 2) & 1);
                let wx = if dx == 1 { d.fx[k] } else { 1.0 - d.fx[k] };
                let wy = if dy == 1 { d.fy[k] } else { 1.0 - d.fy[k] };
                let wz = if dz == 1 { d.fz[k] } else { 1.0 - d.fz[k] };
                let idx = ((d.ix[k] + dx) as usize * g + (d.iy[k] + dy) as usize) * g
                    + (d.iz[k] + dz) as usize;
                density[idx] += wx * wy * wz;
            }
        }
        density
    }

    /// Builds the runnable workload for a machine configuration.
    pub fn build(&self, variant: Variant, cfg: &MachineConfig) -> Workload {
        let width = cfg.simd_width;
        let threads = cfg.total_threads();
        let d = self.generate(threads, width);
        let n = d.ix.len();
        let g = self.params.grid;

        let mut image = MemImage::new();
        let a_ix = image.alloc_u32(&d.ix);
        let a_iy = image.alloc_u32(&d.iy);
        let a_iz = image.alloc_u32(&d.iz);
        let a_fx = image.alloc_f32(&d.fx);
        let a_fy = image.alloc_f32(&d.fy);
        let a_fz = image.alloc_f32(&d.fz);
        let a_density = image.alloc_zeroed(g * g * g);

        let program = build_program(
            variant,
            width,
            threads,
            n,
            g,
            [a_ix, a_iy, a_iz, a_fx, a_fy, a_fz],
            a_density,
        );

        let expected = self.reference(&d);
        let name = format!(
            "SMC/p{}g{}/{}/w{}",
            self.params.particles,
            g,
            variant.label(),
            width
        );
        Workload {
            name,
            program,
            image,
            validate: Box::new(move |backing| {
                for (i, expect) in expected.iter().enumerate() {
                    let got = backing.read_f32(a_density + 4 * i as u64);
                    if !approx_eq(got, *expect, 1e-3, 1e-3) {
                        return Err(format!("density[{i}]: got {got}, expected {expect}"));
                    }
                }
                Ok(())
            }),
        }
    }
}

fn build_program(
    variant: Variant,
    width: usize,
    threads: usize,
    n: usize,
    grid: usize,
    arrays: [u64; 6],
    a_density: u64,
) -> glsc_isa::Program {
    let [a_ix, a_iy, a_iz, a_fx, a_fy, a_fz] = arrays;
    let mut b = ProgramBuilder::new();
    let r = Reg::new;
    let v = VReg::new;
    let m = MReg::new;
    let (r_i, r_end, r_addr, r_t1, r_t2, r_t3, r_den) = (r(2), r(3), r(4), r(5), r(6), r(7), r(8));
    let (v_ix, v_iy, v_iz, v_fx, v_fy, v_fz) = (v(0), v(1), v(2), v(3), v(4), v(5));
    let (v_idx, v_w, v_t, v_one, v_y) = (v(6), v(7), v(8), v(9), v(10));
    let (f_todo, f_tmp) = (m(0), m(1));

    emit_const_one(&mut b);
    b.li(r_den, a_density as i64);
    // v_one = 1.0f32 in every lane.
    b.li(r_t1, f32::to_bits(1.0) as i64);
    b.vsplat(v_one, r_t1);
    emit_partition(&mut b, n, threads, r_i, r_end);

    let outer = b.here();
    let done = b.label();
    b.bge(r_i, r_end, done);
    b.shl(r_addr, r_i, 2);
    for (vreg, base) in [
        (v_ix, a_ix),
        (v_iy, a_iy),
        (v_iz, a_iz),
        (v_fx, a_fx),
        (v_fy, a_fy),
        (v_fz, a_fz),
    ] {
        b.addi(r_t1, r_addr, base as i64);
        b.vload(vreg, r_t1, 0, None);
    }
    for corner in 0..8u32 {
        let (dx, dy, dz) = (corner & 1, (corner >> 1) & 1, (corner >> 2) & 1);
        // Node index: ((ix+dx)*g + iy+dy)*g + iz+dz.
        b.vadd(v_idx, v_ix, dx as i64, None);
        b.vmul(v_idx, v_idx, grid as i64, None);
        b.vadd(v_t, v_iy, dy as i64, None);
        b.vadd(v_idx, v_idx, v_t, None);
        b.vmul(v_idx, v_idx, grid as i64, None);
        b.vadd(v_t, v_iz, dz as i64, None);
        b.vadd(v_idx, v_idx, v_t, None);
        // Trilinear weight wx*wy*wz.
        let mut first = true;
        for (frac, dir) in [(v_fx, dx), (v_fy, dy), (v_fz, dz)] {
            let factor = if dir == 1 {
                frac
            } else {
                b.vfsub(v_t, v_one, frac, None);
                v_t
            };
            if first {
                // v_w = factor (copy via multiply by 1.0).
                b.vfmul(v_w, factor, v_one, None);
                first = false;
            } else {
                b.vfmul(v_w, v_w, factor, None);
            }
        }
        // Atomic reduction of v_w into density[v_idx].
        b.sync_on();
        match variant {
            Variant::Glsc => {
                b.mall(f_todo);
                let retry = b.here();
                b.vgatherlink(f_tmp, v_y, r_den, v_idx, f_todo);
                b.vfadd(v_y, v_y, v_w, Some(f_tmp));
                b.vscattercond(f_tmp, v_y, r_den, v_idx, f_tmp);
                b.mxor(f_todo, f_todo, f_tmp);
                b.bmnz(f_todo, retry);
            }
            Variant::Base => {
                for lane in 0..width {
                    b.vextract(r_t1, v_idx, LaneSel::Imm(lane as u8));
                    b.vextract(r_t2, v_w, LaneSel::Imm(lane as u8));
                    b.shl(r_t1, r_t1, 2);
                    b.add(r_t1, r_t1, r_den);
                    let retry = b.here();
                    b.ll(r_t3, r_t1, 0);
                    b.fadd(r_t3, r_t3, r_t2);
                    b.sc(r_t3, r_t3, r_t1, 0);
                    b.beq(r_t3, 0, retry);
                }
            }
        }
        b.sync_off();
    }
    b.addi(r_i, r_i, width as i64);
    b.jmp(outer);
    b.bind(done).unwrap();
    b.halt();
    b.build().expect("SMC program assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_workload;

    fn check(variant: Variant, cores: usize, tpc: usize, width: usize) {
        let cfg = MachineConfig::paper(cores, tpc, width);
        let w = Smc::new(Dataset::Tiny).build(variant, &cfg);
        run_workload(&w, &cfg).expect("runs and validates");
    }

    #[test]
    fn glsc_configs() {
        check(Variant::Glsc, 1, 1, 4);
        check(Variant::Glsc, 2, 2, 4);
        check(Variant::Glsc, 1, 2, 1);
    }

    #[test]
    fn base_configs() {
        check(Variant::Base, 1, 1, 4);
        check(Variant::Base, 2, 2, 4);
    }

    #[test]
    fn total_density_equals_particle_count() {
        // Trilinear weights per particle sum to exactly 1.
        let smc = Smc::new(Dataset::Tiny);
        let d = smc.generate(2, 4);
        let density = smc.reference(&d);
        let total: f32 = density.iter().sum();
        assert!(
            (total - d.ix.len() as f32).abs() < 0.1,
            "total {total} vs particles {}",
            d.ix.len()
        );
    }

    #[test]
    fn small_grid_causes_aliasing_for_glsc() {
        let cfg = MachineConfig::paper(1, 1, 4);
        let w = Smc::new(Dataset::Tiny).build(Variant::Glsc, &cfg);
        let out = run_workload(&w, &cfg).unwrap();
        assert!(out.report.gsu.sc_elem_attempts > 0);
    }
}
