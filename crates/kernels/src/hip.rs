//! HIP — Histogram for Image Processing (Table 2).
//!
//! Generates a color histogram of an image for image-based retrieval. The
//! image is row-wise partitioned among threads; **each thread updates its
//! own private copy** of the histogram and a SIMD global merge runs at the
//! end (privatization, §4.2). Because of privatization HIP "does not
//! utilize the atomicity feature of GLSC, but takes advantage of its alias
//! detection":
//!
//! * **Base** updates the private copy with per-lane scalar
//!   extract/load/add/store sequences (no atomicity needed, but no SIMD
//!   either — plain scatters have undefined aliasing behaviour);
//! * **GLSC** updates it with the Fig. 3(A) gather-link / increment /
//!   scatter-cond loop, which resolves intra-vector aliases in hardware.
//!
//! The paper's inputs (480×480 car/people images) are unavailable; the
//! generator synthesizes pixel streams whose *bin-collision skew* plays the
//! same role (HIP's high element-failure rate in Table 4 comes from many
//! pixels mapping to few bins). Dataset A is moderately skewed, dataset B
//! more so.

use crate::common::{emit_const_one, emit_partition, Dataset, MemImage, Variant, Workload};
use glsc_isa::{LaneSel, MReg, ProgramBuilder, Reg, VReg};
use glsc_rng::rngs::StdRng;
use glsc_rng::{Rng, SeedableRng};
use glsc_sim::MachineConfig;

/// Input parameters for [`Hip`].
#[derive(Clone, Debug)]
pub struct HipParams {
    /// Number of pixels (padded to a multiple of 256 so every per-thread
    /// chunk is SIMD-width aligned).
    pub pixels: usize,
    /// Number of histogram bins.
    pub bins: usize,
    /// Skew exponent: pixel bins are `bins * u^skew`; larger = more
    /// aliasing.
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
}

/// The HIP benchmark.
#[derive(Clone, Debug)]
pub struct Hip {
    params: HipParams,
}

impl Hip {
    /// Benchmark instance for a dataset of Table 3 (scaled).
    pub fn new(dataset: Dataset) -> Self {
        let params = match dataset {
            // 480x480 image of cars -> moderately skewed color space.
            Dataset::A => HipParams {
                pixels: 30 * 1024,
                bins: 32,
                skew: 4.0,
                seed: 1,
            },
            // 480x480 image of people -> fewer dominant colors.
            Dataset::B => HipParams {
                pixels: 30 * 1024,
                bins: 16,
                skew: 2.0,
                seed: 2,
            },
            Dataset::Tiny => HipParams {
                pixels: 1024,
                bins: 8,
                skew: 2.0,
                seed: 3,
            },
        };
        Self { params }
    }

    /// Benchmark instance with explicit parameters.
    pub fn with_params(params: HipParams) -> Self {
        Self { params }
    }

    /// Generates the pixel stream.
    pub fn gen_pixels(&self) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let n = self.params.pixels.next_multiple_of(256);
        (0..n)
            .map(|_| {
                let u: f64 = rng.random();
                // Skewed quantized color: low bins dominate, as in natural
                // images with a few dominant colors (the source of HIP's
                // high alias rate in Table 4).
                ((self.params.bins as f64) * u.powf(self.params.skew)) as u32
            })
            .collect()
    }

    /// Golden reference histogram.
    pub fn reference(&self, pixels: &[u32]) -> Vec<u32> {
        let mut hist = vec![0u32; self.params.bins];
        for p in pixels {
            hist[(*p as usize) % self.params.bins] += 1;
        }
        hist
    }

    /// Builds the runnable workload for a machine configuration.
    pub fn build(&self, variant: Variant, cfg: &MachineConfig) -> Workload {
        let width = cfg.simd_width;
        let threads = cfg.total_threads();
        let pixels = self.gen_pixels();
        let n = pixels.len();
        let bins = self.params.bins;
        // Pad each private copy to a line multiple so copies don't share
        // cache lines (false sharing would not be wrong, just noisy).
        let bins_pad = bins.next_multiple_of(16);

        let mut image = MemImage::new();
        let input = image.alloc_u32(&pixels);
        let privs = image.alloc_zeroed(bins_pad * threads);
        let global = image.alloc_zeroed(bins_pad);

        let program = build_program(
            variant, width, threads, n, bins, bins_pad, input, privs, global,
        );

        let expected = self.reference(&pixels);
        let name = format!(
            "HIP/{}/{}/w{}",
            self.dataset_label(),
            variant.label(),
            width
        );
        Workload {
            name,
            program,
            image,
            validate: Box::new(move |backing| {
                for (bin, expect) in expected.iter().enumerate() {
                    let got = backing.read_u32(global + 4 * bin as u64);
                    if got != *expect {
                        return Err(format!("bin {bin}: got {got}, expected {expect}"));
                    }
                }
                Ok(())
            }),
        }
    }

    fn dataset_label(&self) -> String {
        format!("p{}b{}", self.params.pixels, self.params.bins)
    }
}

#[allow(clippy::too_many_arguments)]
fn build_program(
    variant: Variant,
    width: usize,
    threads: usize,
    n: usize,
    bins: usize,
    bins_pad: usize,
    input: u64,
    privs: u64,
    global: u64,
) -> glsc_isa::Program {
    let mut b = ProgramBuilder::new();
    let r = Reg::new;
    let v = VReg::new;
    let m = MReg::new;
    let (r_in, r_my, r_i, r_end, r_addr, r_t1, r_t2) = (r(2), r(3), r(4), r(5), r(6), r(7), r(8));
    let (v_in, v_bins, v_tmp) = (v(0), v(1), v(2));
    let (f_todo, f_tmp) = (m(0), m(1));

    emit_const_one(&mut b);
    b.li(r_in, input as i64);
    // My private histogram: privs + gid * bins_pad * 4.
    b.mul(r_my, r(0), (bins_pad * 4) as i64);
    b.addi(r_my, r_my, privs as i64);
    emit_partition(&mut b, n, threads, r_i, r_end);

    // ---- Phase 1: histogram into the private copy ----
    let outer = b.here();
    let merge = b.label();
    b.bge(r_i, r_end, merge);
    b.shl(r_addr, r_i, 2);
    b.add(r_addr, r_addr, r_in);
    b.vload(v_in, r_addr, 0, None);
    b.vmod(v_bins, v_in, bins as i64, None);
    // The histogram update is the benchmark's reduction region.
    b.sync_on();
    match variant {
        Variant::Glsc => {
            b.mall(f_todo);
            let retry = b.here();
            b.vgatherlink(f_tmp, v_tmp, r_my, v_bins, f_todo);
            b.vadd(v_tmp, v_tmp, 1, Some(f_tmp));
            b.vscattercond(f_tmp, v_tmp, r_my, v_bins, f_tmp);
            b.mxor(f_todo, f_todo, f_tmp);
            b.bmnz(f_todo, retry);
        }
        Variant::Base => {
            // Per-lane scalar update: the copy is private, so scalar
            // load/add/store suffices (sequential within the thread).
            for lane in 0..width {
                b.vextract(r_t1, v_bins, LaneSel::Imm(lane as u8));
                b.shl(r_t1, r_t1, 2);
                b.add(r_t1, r_t1, r_my);
                b.ld(r_t2, r_t1, 0);
                b.addi(r_t2, r_t2, 1);
                b.st(r_t2, r_t1, 0);
            }
        }
    }
    b.sync_off();
    b.addi(r_i, r_i, width as i64);
    b.jmp(outer);

    // ---- Phase 2: merge private copies into the global histogram ----
    b.bind(merge).unwrap();
    b.sync_on();
    b.barrier();
    b.sync_off();
    let (r_g, r_copy, r_t) = (r(9), r(10), r(11));
    let (v_acc, v_c) = (v(3), v(4));
    b.li(r_g, global as i64);
    emit_partition(&mut b, bins_pad, threads, r_i, r_end);
    let mtop = b.here();
    let done = b.label();
    b.bge(r_i, r_end, done);
    crate::common::emit_tail_mask(&mut b, f_todo, r_i, r_end, width, r_t1);
    b.shl(r_addr, r_i, 2);
    // Accumulate this bin range across all private copies.
    b.li(r_t, 0);
    b.li(r_t2, 0);
    b.vsplat(v_acc, r_t2);
    let copies = b.here();
    b.mul(r_copy, r_t, (bins_pad * 4) as i64);
    b.addi(r_copy, r_copy, privs as i64);
    b.add(r_copy, r_copy, r_addr);
    b.vload(v_c, r_copy, 0, Some(f_todo));
    b.vadd(v_acc, v_acc, v_c, Some(f_todo));
    b.addi(r_t, r_t, 1);
    b.blt(r_t, threads as i64, copies);
    b.add(r_t1, r_g, r_addr);
    b.vstore(v_acc, r_t1, 0, Some(f_todo));
    b.addi(r_i, r_i, width as i64);
    b.jmp(mtop);
    b.bind(done).unwrap();
    b.halt();
    b.build().expect("HIP program assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_workload;

    fn check(variant: Variant, cores: usize, tpc: usize, width: usize) {
        let cfg = MachineConfig::paper(cores, tpc, width);
        let w = Hip::new(Dataset::Tiny).build(variant, &cfg);
        let out = run_workload(&w, &cfg).expect("runs and validates");
        assert!(out.report.cycles > 0);
    }

    #[test]
    fn glsc_small_configs() {
        check(Variant::Glsc, 1, 1, 4);
        check(Variant::Glsc, 1, 2, 4);
        check(Variant::Glsc, 2, 2, 4);
    }

    #[test]
    fn base_small_configs() {
        check(Variant::Base, 1, 1, 4);
        check(Variant::Base, 2, 2, 4);
    }

    #[test]
    fn widths_one_and_sixteen() {
        check(Variant::Glsc, 1, 2, 1);
        check(Variant::Glsc, 1, 2, 16);
        check(Variant::Base, 1, 2, 1);
        check(Variant::Base, 1, 2, 16);
    }

    #[test]
    fn glsc_uses_alias_detection() {
        let cfg = MachineConfig::paper(1, 1, 4);
        let w = Hip::new(Dataset::Tiny).build(Variant::Glsc, &cfg);
        let out = run_workload(&w, &cfg).unwrap();
        assert!(out.report.gsu.sc_fail_alias > 0, "skewed bins must alias");
        assert_eq!(
            out.report.gsu.sc_fail_reservation, 0,
            "privatized: no cross-thread conflicts at 1x1"
        );
    }

    #[test]
    fn base_uses_no_gsu_atomics() {
        let cfg = MachineConfig::paper(1, 2, 4);
        let w = Hip::new(Dataset::Tiny).build(Variant::Base, &cfg);
        let out = run_workload(&w, &cfg).unwrap();
        assert_eq!(out.report.gsu.gatherlinks, 0);
        assert_eq!(out.report.gsu.scatterconds, 0);
    }

    #[test]
    fn reference_matches_pixel_count() {
        let hip = Hip::new(Dataset::Tiny);
        let pixels = hip.gen_pixels();
        let hist = hip.reference(&pixels);
        assert_eq!(hist.iter().sum::<u32>() as usize, pixels.len());
    }

    #[test]
    fn generator_is_deterministic() {
        let a = Hip::new(Dataset::A).gen_pixels();
        let b = Hip::new(Dataset::A).gen_pixels();
        assert_eq!(a, b);
    }
}
