//! MFP — Maxflow Push (Table 2).
//!
//! The push step of parallel push-relabel maximum flow: flow is pushed
//! along edges, atomically moving excess from the source node to the
//! destination node ("multiple lock critical section": both endpoint
//! locks are required). Edges are partitioned among threads and processed
//! `SIMD-width` at a time for several rounds.
//!
//! All quantities are integers, so the validator can check **exact**
//! conservation of total excess plus capacity bounds — properties that
//! hold under any legal interleaving (the precise flow values are
//! schedule-dependent, as in the paper's solver).
//!
//! * **Base**: scalar per-edge code; locks taken in node-index order;
//! * **GLSC**: conditional `VLOCK` of both endpoint lock sets (Fig. 3(B)),
//!   releasing first locks where the second acquisition fails.

use crate::common::{
    emit_backoff, emit_const_one, emit_partition, emit_scalar_lock, emit_scalar_unlock, emit_vlock,
    emit_vunlock, Dataset, MemImage, VLockRegs, Variant, Workload,
};
use glsc_isa::{AluOp, MReg, ProgramBuilder, Reg, VReg};
use glsc_rng::rngs::StdRng;
use glsc_rng::{Rng, SeedableRng};
use glsc_sim::MachineConfig;

/// Input parameters for [`Mfp`].
#[derive(Clone, Debug)]
pub struct MfpParams {
    /// Number of graph nodes.
    pub nodes: usize,
    /// Number of edges (padded to a multiple of 256 with zero-capacity
    /// edges between dedicated padding nodes).
    pub edges: usize,
    /// Push rounds over the edge list.
    pub rounds: usize,
    /// RNG seed.
    pub seed: u64,
}

/// The MFP benchmark.
#[derive(Clone, Debug)]
pub struct Mfp {
    params: MfpParams,
}

impl Mfp {
    /// Benchmark instance for a dataset of Table 3 (scaled).
    pub fn new(dataset: Dataset) -> Self {
        let params = match dataset {
            // 1500 nodes, 6800 edges.
            Dataset::A => MfpParams {
                nodes: 2048,
                edges: 4096,
                rounds: 3,
                seed: 61,
            },
            // 3888 nodes, 18252 edges.
            Dataset::B => MfpParams {
                nodes: 4096,
                edges: 8192,
                rounds: 2,
                seed: 62,
            },
            Dataset::Tiny => MfpParams {
                nodes: 512,
                edges: 512,
                rounds: 2,
                seed: 63,
            },
        };
        Self { params }
    }

    /// Benchmark instance with explicit parameters.
    pub fn with_params(params: MfpParams) -> Self {
        Self { params }
    }

    /// Generates the graph: per-edge endpoints and capacities, plus the
    /// initial excess per node. Edges are sorted by source node (threads
    /// own contiguous node regions) and interleaved within each thread's
    /// chunk so SIMD groups touch independent nodes.
    pub fn generate(
        &self,
        threads: usize,
        width: usize,
    ) -> (Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>) {
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let n = self.params.edges.next_multiple_of(256);
        let mut src = Vec::with_capacity(n);
        let mut dst = Vec::with_capacity(n);
        let mut cap = Vec::with_capacity(n);
        // Edges connect nearby nodes (mesh-like graphs), so a thread's
        // partition of nodes covers both endpoints of most of its edges.
        let span = 8u32.min(self.params.nodes as u32 - 1).max(1);
        for _ in 0..self.params.edges {
            let a = rng.random_range(0..self.params.nodes as u32);
            let off = rng.random_range(1..=span);
            let (u, v) = if a + off < self.params.nodes as u32 {
                (a, a + off)
            } else {
                // Clamp at node 0 for small graphs (keeps u < v).
                (a - off.min(a), a)
            };
            src.push(u);
            dst.push(v);
            cap.push(rng.random_range(1..100u32));
        }
        // Partition edges by source node: the paper "evenly divides graph
        // nodes among threads and pushes the flow within each partition",
        // so cross-thread lock conflicts are rare (~0% failure in Table 4).
        let mut order: Vec<usize> = (0..src.len()).collect();
        order.sort_by_key(|&e| (src[e], dst[e]));
        let mut edges: Vec<(u32, u32, u32)> =
            order.iter().map(|&e| (src[e], dst[e], cap[e])).collect();
        for t in 0..threads {
            let (s, e) = crate::common::chunk_bounds(n, threads, t);
            let e = e.min(edges.len());
            if s < e {
                crate::common::interleave_for_width(&mut edges[s..e], width);
            }
        }
        src = edges.iter().map(|e| e.0).collect();
        dst = edges.iter().map(|e| e.1).collect();
        cap = edges.iter().map(|e| e.2).collect();
        for k in self.params.edges..n {
            let base = (self.params.nodes + 2 * (k - self.params.edges)) as u32;
            src.push(base);
            dst.push(base + 1);
            cap.push(0);
        }
        let total_nodes = self.params.nodes + 2 * (n - self.params.edges);
        let excess: Vec<u32> = (0..total_nodes)
            .map(|_| rng.random_range(0..1000u32))
            .collect();
        (src, dst, cap, excess)
    }

    /// Builds the runnable workload for a machine configuration.
    pub fn build(&self, variant: Variant, cfg: &MachineConfig) -> Workload {
        let width = cfg.simd_width;
        let threads = cfg.total_threads();
        let (src, dst, cap, excess) = self.generate(threads, width);
        let n = src.len();
        let total_nodes = excess.len();
        let initial_sum: u64 = excess.iter().map(|&x| x as u64).sum();

        let mut image = MemImage::new();
        let a_src = image.alloc_u32(&src);
        let a_dst = image.alloc_u32(&dst);
        let a_cap = image.alloc_u32(&cap);
        let a_flow = image.alloc_zeroed(n);
        let a_excess = image.alloc_u32(&excess);
        let a_lock = image.alloc_zeroed(total_nodes);

        let program = build_program(
            variant,
            width,
            threads,
            n,
            self.params.rounds,
            [a_src, a_dst, a_cap, a_flow, a_excess, a_lock],
        );

        let cap_copy = cap.clone();
        let name = format!(
            "MFP/n{}e{}/{}/w{}",
            self.params.nodes,
            self.params.edges,
            variant.label(),
            width
        );
        Workload {
            name,
            program,
            image,
            validate: Box::new(move |backing| {
                let final_sum: u64 = (0..total_nodes)
                    .map(|i| backing.read_u32(a_excess + 4 * i as u64) as u64)
                    .sum();
                if final_sum != initial_sum {
                    return Err(format!(
                        "excess not conserved: {final_sum} vs {initial_sum}"
                    ));
                }
                for (e, c) in cap_copy.iter().enumerate() {
                    let f = backing.read_u32(a_flow + 4 * e as u64);
                    if f > *c {
                        return Err(format!("flow[{e}]={f} exceeds capacity {c}"));
                    }
                }
                for i in 0..total_nodes as u64 {
                    if backing.read_u32(a_lock + 4 * i) != 0 {
                        return Err(format!("lock {i} still held"));
                    }
                }
                Ok(())
            }),
        }
    }
}

fn build_program(
    variant: Variant,
    width: usize,
    threads: usize,
    n: usize,
    rounds: usize,
    arrays: [u64; 6],
) -> glsc_isa::Program {
    let [a_src, a_dst, a_cap, a_flow, a_excess, a_lock] = arrays;
    let mut b = ProgramBuilder::new();
    let r = Reg::new;
    let v = VReg::new;
    let m = MReg::new;

    emit_const_one(&mut b);
    let (r_i, r_end, r_start, r_round) = (r(2), r(3), r(12), r(13));
    let (r_t1, r_t2, r_t3, r_t4, r_t5, r_t6) = (r(4), r(5), r(6), r(7), r(11), r(14));
    let (r_lock, r_excess) = (r(8), r(9));
    b.li(r_lock, a_lock as i64);
    b.li(r_excess, a_excess as i64);
    emit_partition(&mut b, n, threads, r_start, r_end);
    b.li(r_round, 0);
    let round_top = b.here();
    b.mv(r_i, r_start);

    match variant {
        Variant::Base => {
            let outer = b.here();
            let round_next = b.label();
            b.bge(r_i, r_end, round_next);
            b.shl(r_t1, r_i, 2);
            // Load endpoints.
            b.addi(r_t2, r_t1, a_src as i64);
            b.ld(r_t2, r_t2, 0); // u
            b.addi(r_t3, r_t1, a_dst as i64);
            b.ld(r_t3, r_t3, 0); // v
                                 // Lock in index order.
            let (r_lo, r_hi) = (r(15), r(16));
            b.minu(r_lo, r_t2, r_t3);
            b.alu(AluOp::Max, r_hi, r_t2, glsc_isa::Operand::Reg(r_t3));
            b.shl(r_lo, r_lo, 2);
            b.shl(r_hi, r_hi, 2);
            b.add(r_lo, r_lo, r_lock);
            b.add(r_hi, r_hi, r_lock);
            b.sync_on();
            emit_scalar_lock(&mut b, r_lo, r_t4, r_t5);
            emit_scalar_lock(&mut b, r_hi, r_t4, r_t5);
            b.sync_off();
            // amt = min(excess[u] >> 1, cap[e] - flow[e]).
            b.shl(r_t2, r_t2, 2);
            b.add(r_t2, r_t2, r_excess); // &excess[u]
            b.shl(r_t3, r_t3, 2);
            b.add(r_t3, r_t3, r_excess); // &excess[v]
            b.ld(r_t4, r_t2, 0); // excess[u]
            b.addi(r_t5, r_t1, a_cap as i64);
            b.ld(r_t5, r_t5, 0); // cap
            b.addi(r_t6, r_t1, a_flow as i64);
            b.ld(r_t1, r_t6, 0); // flow (r_t6 keeps &flow)
            b.sub(r_t5, r_t5, r_t1); // residual
            let r_amt = r(17);
            b.shr(r_amt, r_t4, 1);
            b.minu(r_amt, r_amt, r_t5);
            // excess[u] -= amt; excess[v] += amt; flow[e] += amt.
            b.sub(r_t4, r_t4, r_amt);
            b.st(r_t4, r_t2, 0);
            b.ld(r_t4, r_t3, 0);
            b.add(r_t4, r_t4, r_amt);
            b.st(r_t4, r_t3, 0);
            b.add(r_t1, r_t1, r_amt);
            b.st(r_t1, r_t6, 0);
            b.sync_on();
            emit_scalar_unlock(&mut b, r_hi, r_t4);
            emit_scalar_unlock(&mut b, r_lo, r_t4);
            b.sync_off();
            b.addi(r_i, r_i, 1);
            b.jmp(outer);
            b.bind(round_next).unwrap();
        }
        Variant::Glsc => {
            let (v_u, v_v, v_lo, v_hi) = (v(0), v(1), v(2), v(3));
            let (v_eu, v_ev, v_cap, v_flow, v_amt) = (v(7), v(8), v(9), v(10), v(11));
            let regs = VLockRegs {
                vtmp: v(4),
                vone: v(5),
                vzero: v(6),
                ftmp1: m(2),
                ftmp2: m(3),
            };
            let (f_todo, f, f_hi, f_rel) = (m(0), m(1), m(4), m(5));
            b.vsplat(regs.vone, r(31));
            b.li(r_t1, 0);
            b.vsplat(regs.vzero, r_t1);
            b.mv(r(18), r(0)); // backoff LCG state
            let outer = b.here();
            let round_next = b.label();
            b.bge(r_i, r_end, round_next);
            b.shl(r_t1, r_i, 2);
            b.addi(r_t2, r_t1, a_src as i64);
            b.vload(v_u, r_t2, 0, None);
            b.addi(r_t2, r_t1, a_dst as i64);
            b.vload(v_v, r_t2, 0, None);
            b.valu(AluOp::Min, v_lo, v_u, v_v, None);
            b.valu(AluOp::Max, v_hi, v_u, v_v, None);
            b.sync_on();
            b.mall(f_todo);
            let retry = b.here();
            b.mmov(f, f_todo);
            emit_vlock(&mut b, r_lock, v_lo, f, regs);
            b.mmov(f_hi, f);
            emit_vlock(&mut b, r_lock, v_hi, f_hi, regs);
            b.mnot(f_rel, f_hi);
            b.mand(f_rel, f_rel, f);
            emit_vunlock(&mut b, r_lock, v_lo, f_rel, regs);
            // Critical section under f_hi.
            b.vgather(v_eu, r_excess, v_u, Some(f_hi));
            b.addi(r_t2, r_t1, a_cap as i64);
            b.vload(v_cap, r_t2, 0, Some(f_hi));
            b.addi(r_t3, r_t1, a_flow as i64);
            b.vload(v_flow, r_t3, 0, Some(f_hi));
            b.vsub(v_cap, v_cap, v_flow, Some(f_hi)); // residual
            b.vshr(v_amt, v_eu, 1, Some(f_hi));
            b.valu(AluOp::Min, v_amt, v_amt, v_cap, Some(f_hi));
            // excess[u] -= amt.
            b.vsub(v_eu, v_eu, v_amt, Some(f_hi));
            b.vscatter(v_eu, r_excess, v_u, Some(f_hi));
            // excess[v] += amt.
            b.vgather(v_ev, r_excess, v_v, Some(f_hi));
            b.vadd(v_ev, v_ev, v_amt, Some(f_hi));
            b.vscatter(v_ev, r_excess, v_v, Some(f_hi));
            // flow[e] += amt (edges private to this thread).
            b.vadd(v_flow, v_flow, v_amt, Some(f_hi));
            b.vstore(v_flow, r_t3, 0, Some(f_hi));
            emit_vunlock(&mut b, r_lock, v_hi, f_hi, regs);
            emit_vunlock(&mut b, r_lock, v_lo, f_hi, regs);
            b.mxor(f_todo, f_todo, f_hi);
            let cont = b.label();
            b.bmz(f_todo, cont);
            // Symmetry-breaking backoff before retrying failed lanes.
            emit_backoff(&mut b, r(18), r(19));
            b.jmp(retry);
            b.bind(cont).unwrap();
            b.sync_off();
            b.addi(r_i, r_i, width as i64);
            b.jmp(outer);
            b.bind(round_next).unwrap();
        }
    }
    b.addi(r_round, r_round, 1);
    b.blt(r_round, rounds as i64, round_top);
    b.halt();
    b.build().expect("MFP program assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_workload;

    fn check(variant: Variant, cores: usize, tpc: usize, width: usize) {
        let cfg = MachineConfig::paper(cores, tpc, width);
        let w = Mfp::new(Dataset::Tiny).build(variant, &cfg);
        run_workload(&w, &cfg).expect("runs and validates");
    }

    #[test]
    fn glsc_configs() {
        check(Variant::Glsc, 1, 1, 4);
        check(Variant::Glsc, 2, 2, 4);
        check(Variant::Glsc, 1, 2, 16);
        check(Variant::Glsc, 1, 1, 1);
    }

    #[test]
    fn base_configs() {
        check(Variant::Base, 1, 1, 4);
        check(Variant::Base, 2, 2, 4);
        check(Variant::Base, 4, 2, 1);
    }

    #[test]
    fn pushes_move_flow() {
        let cfg = MachineConfig::paper(1, 1, 4);
        let mfp = Mfp::new(Dataset::Tiny);
        let w = mfp.build(Variant::Glsc, &cfg);
        // Run through the public runner; validation checks conservation.
        let out = run_workload(&w, &cfg).unwrap();
        assert!(out.report.gsu.gatherlinks > 0, "locks use gather-link");
    }

    #[test]
    fn dense_contention_converges() {
        let cfg = MachineConfig::paper(2, 4, 4);
        let w = Mfp::with_params(MfpParams {
            nodes: 12,
            edges: 256,
            rounds: 2,
            seed: 77,
        })
        .build(Variant::Glsc, &cfg);
        run_workload(&w, &cfg).expect("no livelock under dense contention");
    }
}
