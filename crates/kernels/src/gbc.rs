//! GBC — Grid-based Collision Detection, broad phase (Table 2).
//!
//! Objects are mapped to grid cells and inserted into per-cell **linked
//! lists**, each protected by a per-cell test-and-set lock ("single lock
//! critical section" in Table 3):
//!
//! * **Base**: per-object scalar lock spin (`ll`/`sc`), list insert,
//!   unlock;
//! * **GLSC**: the Fig. 3(B) `VLOCK`/`VUNLOCK` idiom over `SIMD-width`
//!   objects — lanes whose cell lock is acquired insert with gathers and
//!   scatters (lock exclusivity makes their cells unique), the rest retry.
//!
//! The paper's object sets come from a collision-detection scene where
//! nearby objects share cells; the generator reproduces that with
//! *clustered* cell assignment (geometric run lengths), which is what
//! drives GBC's ~31–34% element failure rate (aliasing) in Table 4.

use crate::common::{
    emit_const_one, emit_partition, emit_scalar_lock, emit_scalar_unlock, emit_vlock, emit_vunlock,
    Dataset, MemImage, VLockRegs, Variant, Workload,
};
use glsc_isa::{MReg, ProgramBuilder, Reg, VReg};
use glsc_rng::rngs::StdRng;
use glsc_rng::{Rng, SeedableRng};
use glsc_sim::MachineConfig;
use std::collections::HashMap;

/// List-terminator sentinel stored in `head`/`next`.
pub const NIL: u32 = u32::MAX;

/// Maximum objects per cluster run (collision cells hold a handful of
/// objects; an uncapped geometric tail would make single vectors need many
/// serialized lock rounds, which the paper's scenes do not show).
pub const MAX_RUN: usize = 3;

/// Input parameters for [`Gbc`].
#[derive(Clone, Debug)]
pub struct GbcParams {
    /// Number of objects (padded to a multiple of 256; padding objects go
    /// to dedicated spill cells so they don't perturb contention).
    pub objects: usize,
    /// Number of grid cells.
    pub cells: usize,
    /// Mean cluster run length (consecutive objects sharing a cell).
    pub cluster: f64,
    /// RNG seed.
    pub seed: u64,
}

/// The GBC benchmark.
#[derive(Clone, Debug)]
pub struct Gbc {
    params: GbcParams,
}

impl Gbc {
    /// Benchmark instance for a dataset of Table 3 (scaled).
    pub fn new(dataset: Dataset) -> Self {
        let params = match dataset {
            // 649 objects in 8191 cells -> sparse occupancy, mild clusters.
            Dataset::A => GbcParams {
                objects: 4096,
                cells: 8192,
                cluster: 2.0,
                seed: 41,
            },
            // 5649 objects in 65521 cells -> larger scene, heavier clusters.
            Dataset::B => GbcParams {
                objects: 6144,
                cells: 4096,
                cluster: 2.3,
                seed: 42,
            },
            Dataset::Tiny => GbcParams {
                objects: 512,
                cells: 128,
                cluster: 2.0,
                seed: 43,
            },
        };
        Self { params }
    }

    /// Benchmark instance with explicit parameters.
    pub fn with_params(params: GbcParams) -> Self {
        Self { params }
    }

    /// Generates the object → cell mapping with clustered runs.
    pub fn gen_cells(&self) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let n = self.params.objects.next_multiple_of(256);
        let mut cells = Vec::with_capacity(n);
        let mut current = 0u32;
        let mut run = 0usize;
        for _ in 0..self.params.objects {
            if run == 0 {
                current = rng.random_range(0..self.params.cells as u32);
                // Geometric run length with mean `cluster`, capped.
                run = 1;
                while run < MAX_RUN && rng.random_bool(1.0 - 1.0 / self.params.cluster) {
                    run += 1;
                }
            }
            cells.push(current);
            run -= 1;
        }
        // Padding objects land in distinct spill cells appended after the
        // real grid so contention statistics are untouched.
        for k in self.params.objects..n {
            cells.push((self.params.cells + (k - self.params.objects)) as u32);
        }
        cells
    }

    /// Golden reference: sorted object list per cell.
    pub fn reference(&self, cells: &[u32]) -> HashMap<u32, Vec<u32>> {
        let mut map: HashMap<u32, Vec<u32>> = HashMap::new();
        for (obj, cell) in cells.iter().enumerate() {
            map.entry(*cell).or_default().push(obj as u32);
        }
        for objs in map.values_mut() {
            objs.sort_unstable();
        }
        map
    }

    /// Builds the runnable workload for a machine configuration.
    pub fn build(&self, variant: Variant, cfg: &MachineConfig) -> Workload {
        let width = cfg.simd_width;
        let threads = cfg.total_threads();
        let cells = self.gen_cells();
        let n = cells.len();
        // Spill cells for padding sit beyond the real grid.
        let total_cells = self.params.cells + (n - self.params.objects);

        let mut image = MemImage::new();
        let a_cell = image.alloc_u32(&cells);
        let a_head = image.alloc_u32(&vec![NIL; total_cells]);
        let a_next = image.alloc_u32(&vec![NIL; n]);
        let a_lock = image.alloc_zeroed(total_cells);

        let program = build_program(variant, width, threads, n, a_cell, a_head, a_next, a_lock);

        let expected = self.reference(&cells);
        let name = format!(
            "GBC/o{}c{}/{}/w{}",
            self.params.objects,
            self.params.cells,
            variant.label(),
            width
        );
        Workload {
            name,
            program,
            image,
            validate: Box::new(move |backing| {
                // Rebuild every list and compare object sets per cell.
                let mut seen_total = 0usize;
                for cell in 0..total_cells as u32 {
                    let mut objs = Vec::new();
                    let mut cur = backing.read_u32(a_head + 4 * cell as u64);
                    let mut steps = 0;
                    while cur != NIL {
                        objs.push(cur);
                        cur = backing.read_u32(a_next + 4 * cur as u64);
                        steps += 1;
                        if steps > n {
                            return Err(format!("cycle in list of cell {cell}"));
                        }
                    }
                    objs.sort_unstable();
                    let expect = expected.get(&cell).cloned().unwrap_or_default();
                    if objs != expect {
                        return Err(format!(
                            "cell {cell}: got {} objects {:?}, expected {} {:?}",
                            objs.len(),
                            &objs[..objs.len().min(8)],
                            expect.len(),
                            &expect[..expect.len().min(8)]
                        ));
                    }
                    seen_total += objs.len();
                }
                if seen_total != n {
                    return Err(format!("{seen_total} of {n} objects inserted"));
                }
                // All locks released.
                for cell in 0..total_cells as u64 {
                    if backing.read_u32(a_lock + 4 * cell) != 0 {
                        return Err(format!("lock {cell} still held"));
                    }
                }
                Ok(())
            }),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn build_program(
    variant: Variant,
    width: usize,
    threads: usize,
    n: usize,
    a_cell: u64,
    a_head: u64,
    a_next: u64,
    a_lock: u64,
) -> glsc_isa::Program {
    let mut b = ProgramBuilder::new();
    let r = Reg::new;
    let v = VReg::new;
    let m = MReg::new;

    emit_const_one(&mut b);
    let (r_i, r_end, r_t1, r_t2, r_t3, r_t4) = (r(2), r(3), r(4), r(5), r(6), r(7));
    let (r_lock, r_head, r_next) = (r(8), r(9), r(10));
    b.li(r_lock, a_lock as i64);
    b.li(r_head, a_head as i64);
    b.li(r_next, a_next as i64);
    emit_partition(&mut b, n, threads, r_i, r_end);

    match variant {
        Variant::Base => {
            let outer = b.here();
            let done = b.label();
            b.bge(r_i, r_end, done);
            // cell = obj_cell[i]; lock address.
            b.shl(r_t1, r_i, 2);
            b.addi(r_t2, r_t1, a_cell as i64);
            b.ld(r_t2, r_t2, 0);
            b.shl(r_t2, r_t2, 2);
            b.add(r_t3, r_t2, r_lock);
            b.sync_on();
            emit_scalar_lock(&mut b, r_t3, r_t4, r(11));
            b.sync_off();
            // next[i] = head[cell]; head[cell] = i.
            b.add(r_t2, r_t2, r_head);
            b.ld(r_t4, r_t2, 0);
            b.add(r_t1, r_t1, r_next);
            b.st(r_t4, r_t1, 0);
            b.st(r_i, r_t2, 0);
            b.sync_on();
            emit_scalar_unlock(&mut b, r_t3, r_t4);
            b.sync_off();
            b.addi(r_i, r_i, 1);
            b.jmp(outer);
            b.bind(done).unwrap();
        }
        Variant::Glsc => {
            let (v_cell, v_obj, v_h, v_iota) = (v(0), v(1), v(2), v(3));
            let regs = VLockRegs {
                vtmp: v(4),
                vone: v(5),
                vzero: v(6),
                ftmp1: m(2),
                ftmp2: m(3),
            };
            let (f_todo, f) = (m(0), m(1));
            b.vsplat(regs.vone, r(31));
            b.li(r_t1, 0);
            b.vsplat(regs.vzero, r_t1);
            b.viota(v_iota);
            let outer = b.here();
            let done = b.label();
            b.bge(r_i, r_end, done);
            b.shl(r_t1, r_i, 2);
            b.addi(r_t1, r_t1, a_cell as i64);
            b.vload(v_cell, r_t1, 0, None);
            // Object ids for these lanes: i + iota.
            b.vsplat(v_obj, r_i);
            b.vadd(v_obj, v_obj, v_iota, None);
            b.sync_on();
            b.mall(f_todo);
            let retry = b.here();
            b.mmov(f, f_todo);
            emit_vlock(&mut b, r_lock, v_cell, f, regs);
            // Under the acquired mask the cells are unique (each lane holds
            // its cell's lock exclusively): plain gathers/scatters suffice.
            b.vgather(v_h, r_head, v_cell, Some(f));
            b.vscatter(v_h, r_next, v_obj, Some(f));
            b.vscatter(v_obj, r_head, v_cell, Some(f));
            emit_vunlock(&mut b, r_lock, v_cell, f, regs);
            b.mxor(f_todo, f_todo, f);
            b.bmnz(f_todo, retry);
            b.sync_off();
            b.addi(r_i, r_i, width as i64);
            b.jmp(outer);
            b.bind(done).unwrap();
        }
    }
    b.halt();
    b.build().expect("GBC program assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_workload;

    fn check(variant: Variant, cores: usize, tpc: usize, width: usize) {
        let cfg = MachineConfig::paper(cores, tpc, width);
        let w = Gbc::new(Dataset::Tiny).build(variant, &cfg);
        run_workload(&w, &cfg).expect("runs and validates");
    }

    #[test]
    fn glsc_configs() {
        check(Variant::Glsc, 1, 1, 4);
        check(Variant::Glsc, 2, 2, 4);
        check(Variant::Glsc, 1, 2, 16);
        check(Variant::Glsc, 1, 1, 1);
    }

    #[test]
    fn base_configs() {
        check(Variant::Base, 1, 1, 4);
        check(Variant::Base, 2, 2, 4);
        check(Variant::Base, 4, 4, 1);
    }

    #[test]
    fn clustering_produces_aliasing_failures() {
        let cfg = MachineConfig::paper(1, 1, 4);
        let w = Gbc::new(Dataset::Tiny).build(Variant::Glsc, &cfg);
        let out = run_workload(&w, &cfg).unwrap();
        assert!(
            out.report.gsu.sc_fail_alias > 0,
            "clustered cells must alias within vectors"
        );
    }

    #[test]
    fn cluster_generator_statistics() {
        let gbc = Gbc::new(Dataset::Tiny);
        let cells = gbc.gen_cells();
        let repeats = cells.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(
            repeats * 5 > cells.len(),
            "repeats {repeats} of {}",
            cells.len()
        );
    }
}
