//! Shared kernel infrastructure: memory images, workload runner, and the
//! SIMD lock idioms of Fig. 3.

use glsc_isa::{CmpOp, MReg, Program, ProgramBuilder, Reg, VReg};
use glsc_mem::Backing;
use glsc_sim::{ChaosConfig, ChaosStats, FaultPlan, Machine, MachineConfig, RunReport};

/// The seven benchmark names, in the paper's order.
pub const KERNEL_NAMES: [&str; 7] = ["GBC", "FS", "GPS", "HIP", "SMC", "MFP", "TMS"];

/// Which implementation of the atomic work a workload uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Scalar `ll`/`sc` (or scalar locks) for atomics — the paper's
    /// baseline architecture.
    Base,
    /// `vgatherlink`/`vscattercond` — the paper's proposal.
    Glsc,
}

impl Variant {
    /// Display name matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Base => "Base",
            Variant::Glsc => "GLSC",
        }
    }
}

/// Input scale. `A` and `B` mirror the two datasets per benchmark in
/// Table 3 (scaled down; see DESIGN.md); `Tiny` is for unit tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Dataset A (first column of Table 3), scaled.
    A,
    /// Dataset B (second column of Table 3), scaled.
    B,
    /// Small inputs for fast unit tests.
    Tiny,
}

/// An initial memory image: a bump allocator of 64-byte-aligned regions
/// plus their contents.
#[derive(Clone, Debug, Default)]
pub struct MemImage {
    chunks: Vec<(u64, Vec<u32>)>,
    next: u64,
}

impl MemImage {
    /// Creates an empty image; allocation starts at 64 KiB.
    pub fn new() -> Self {
        Self {
            chunks: Vec::new(),
            next: 0x1_0000,
        }
    }

    /// Allocates a region holding `data`, returning its base address.
    pub fn alloc_u32(&mut self, data: &[u32]) -> u64 {
        let base = self.next;
        self.next += (data.len() as u64 * 4 + 63) & !63;
        if self.next == base {
            self.next += 64;
        }
        self.chunks.push((base, data.to_vec()));
        base
    }

    /// Allocates a region holding `data` as f32 bit patterns.
    pub fn alloc_f32(&mut self, data: &[f32]) -> u64 {
        let words: Vec<u32> = data.iter().map(|f| f.to_bits()).collect();
        self.alloc_u32(&words)
    }

    /// Allocates a zero-filled region of `words` 32-bit words.
    pub fn alloc_zeroed(&mut self, words: usize) -> u64 {
        self.alloc_u32(&vec![0u32; words])
    }

    /// Writes the image into a backing store.
    pub fn apply(&self, backing: &mut Backing) {
        for (base, words) in &self.chunks {
            backing.write_u32_slice(*base, words);
        }
    }

    /// Publishes the image as an immutable, shareable copy-on-write base
    /// (DESIGN.md §13): the page contents are exactly what [`apply`]
    /// (MemImage::apply) would have written, so mounting the result via
    /// [`Backing::set_base`] is functionally indistinguishable from
    /// applying the image — every fleet member materializes private pages
    /// only on first write instead of paying a full image fill per run.
    pub fn publish(&self) -> std::sync::Arc<glsc_mem::BackingBase> {
        let mut staging = Backing::new();
        self.apply(&mut staging);
        staging.freeze()
    }

    /// Order-sensitive FNV-1a hash of the image layout and contents.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for (base, words) in &self.chunks {
            fnv1a(&mut h, &base.to_le_bytes());
            fnv1a(&mut h, &(words.len() as u64).to_le_bytes());
            for w in words {
                fnv1a(&mut h, &w.to_le_bytes());
            }
        }
        h
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Validation callback run against the final memory image.
pub type ValidateFn = Box<dyn Fn(&Backing) -> Result<(), String> + Send + Sync>;

/// A runnable benchmark instance: program + initial memory + validator.
pub struct Workload {
    /// Human-readable name, e.g. `"HIP/A/GLSC/w4"`.
    pub name: String,
    /// The SPMD program all hardware threads execute.
    pub program: Program,
    /// Initial memory contents.
    pub image: MemImage,
    /// Post-run correctness check against a golden reference.
    pub validate: ValidateFn,
}

impl Workload {
    /// Content fingerprint of everything that determines this workload's
    /// simulated behavior: the program text (instructions and sync
    /// regions, via the disassembly listing) and the initial memory
    /// image. The benchmark harness folds this into its job-cache keys,
    /// so editing a kernel's code or dataset generator automatically
    /// invalidates its cached results.
    pub fn fingerprint(&self) -> u64 {
        let mut h = self.image.fingerprint();
        fnv1a(&mut h, self.program.to_string().as_bytes());
        h
    }
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("instructions", &self.program.len())
            .finish()
    }
}

/// Result of running a workload to completion (validation already passed).
#[derive(Clone, Debug)]
pub struct KernelOutcome {
    /// Simulation statistics.
    pub report: RunReport,
}

/// Runs a workload on a freshly built machine and validates the result.
///
/// # Errors
///
/// Returns an error string if the simulation exceeds its cycle budget or
/// the validator rejects the final memory image.
pub fn run_workload(w: &Workload, cfg: &MachineConfig) -> Result<KernelOutcome, String> {
    let mut machine = Machine::new(cfg.clone());
    w.image.apply(machine.mem_mut().backing_mut());
    machine.load_program(w.program.clone());
    let report = machine
        .run()
        .map_err(|e| format!("{}: simulation failed: {e}", w.name))?;
    (w.validate)(machine.mem().backing())
        .map_err(|e| format!("{}: validation failed: {e}", w.name))?;
    Ok(KernelOutcome { report })
}

/// Runs a workload with a seeded fault-injection plan installed
/// (DESIGN.md §9) and validates the result against the same golden
/// reference as the fault-free path — the atomicity oracle: faults may
/// slow the run down but must never change what it computes. Also returns
/// the injection counters so callers can assert the perturbation was real.
///
/// # Errors
///
/// Returns an error string if the simulation aborts (cycle budget,
/// watchdog, invariant check) or the validator rejects the final memory
/// image; the string names the workload and embeds the structured
/// [`SimError`](glsc_sim::SimError) diagnostic.
pub fn run_workload_chaos(
    w: &Workload,
    cfg: &MachineConfig,
    chaos: ChaosConfig,
) -> Result<(KernelOutcome, ChaosStats), String> {
    let mut machine = Machine::new(cfg.clone());
    machine
        .mem_mut()
        .install_fault_plan(FaultPlan::new(chaos.clone()));
    w.image.apply(machine.mem_mut().backing_mut());
    machine.load_program(w.program.clone());
    let report = machine.run().map_err(|e| {
        format!(
            "{} (chaos seed {}): simulation failed: {e}",
            w.name, chaos.seed
        )
    })?;
    (w.validate)(machine.mem().backing()).map_err(|e| {
        format!(
            "{} (chaos seed {}): validation failed: {e}",
            w.name, chaos.seed
        )
    })?;
    let stats = machine
        .mem_mut()
        .take_fault_plan()
        .map(|p| p.stats().clone())
        .unwrap_or_default();
    Ok((KernelOutcome { report }, stats))
}

/// Approximate float equality with relative + absolute tolerance (atomic
/// fp reductions reorder additions, so exact equality is not expected).
pub fn approx_eq(a: f32, b: f32, rel: f32, abs: f32) -> bool {
    let diff = (a - b).abs();
    diff <= abs || diff <= rel * a.abs().max(b.abs())
}

/// Reorders a thread's work slice so that consecutive `width`-aligned
/// groups sample items far apart in the original (locality-sorted) order:
/// a transpose interleave. This is the paper's "reordered into groups of
/// independent constraints" (§4.2, GPS): neighbours in sorted order —
/// which would alias within a SIMD vector — end up in different groups,
/// while the thread's overall working set stays contiguous.
pub fn interleave_for_width<T: Clone>(slice: &mut [T], width: usize) {
    let n = slice.len();
    if width <= 1 || n <= width {
        return;
    }
    let rows = n.div_ceil(width);
    let mut out = Vec::with_capacity(n);
    for r in 0..rows {
        for c in 0..width {
            let idx = c * rows + r;
            if idx < n {
                out.push(slice[idx].clone());
            }
        }
    }
    slice.clone_from_slice(&out);
}

/// Splits `n` items into `t` contiguous chunks; returns the bounds of
/// chunk `i` (used both by generators and by the emitted partition code).
pub fn chunk_bounds(n: usize, t: usize, i: usize) -> (usize, usize) {
    let chunk = n.div_ceil(t);
    let start = (i * chunk).min(n);
    let end = (start + chunk).min(n);
    (start, end)
}

/// Emits code computing this thread's `[start, end)` partition of `n`
/// items into `r_start`/`r_end` (matching [`chunk_bounds`]). Clobbers
/// nothing else; `n` and the thread count are compile-time constants.
pub fn emit_partition(
    b: &mut ProgramBuilder,
    n: usize,
    total_threads: usize,
    r_start: Reg,
    r_end: Reg,
) {
    let chunk = n.div_ceil(total_threads) as i64;
    let r_id = Reg::new(0);
    b.mul(r_start, r_id, chunk);
    b.minu(r_start, r_start, n as i64);
    b.addi(r_end, r_start, chunk);
    b.minu(r_end, r_end, n as i64);
}

/// Emits code producing the tail mask for a strip-mined loop into `f`:
/// `f = (1 << min(r_end - r_i, width)) - 1`. Clobbers `r_tmp`.
pub fn emit_tail_mask(
    b: &mut ProgramBuilder,
    f: MReg,
    r_i: Reg,
    r_end: Reg,
    width: usize,
    r_tmp: Reg,
) {
    b.sub(r_tmp, r_end, r_i);
    b.minu(r_tmp, r_tmp, width as i64);
    let r_one = r_tmp; // reuse: tmp = (1 << tmp) - 1, computed via a second scratch
                       // (1 << t) - 1 without a second register: shift an immediate 1 left by t.
    b.alu(
        glsc_isa::AluOp::Shl,
        r_one,
        Reg::new(31),
        glsc_isa::Operand::Reg(r_tmp),
    );
    // NOTE: r31 is reserved as the constant 1 by convention; emit_const_one
    // must have run in the prologue.
    b.addi(r_one, r_one, -1);
    b.r2m(f, r_one);
}

/// Emits the prologue establishing the `r31 == 1` convention used by
/// [`emit_tail_mask`] and the lock idioms.
pub fn emit_const_one(b: &mut ProgramBuilder) {
    b.li(Reg::new(31), 1);
}

/// Registers used by the SIMD lock idioms of Fig. 3(B).
#[derive(Clone, Copy, Debug)]
pub struct VLockRegs {
    /// Gathered lock values (clobbered).
    pub vtmp: VReg,
    /// All-ones lane constant (must hold 1 in every lane).
    pub vone: VReg,
    /// All-zeros lane constant (must hold 0 in every lane).
    pub vzero: VReg,
    /// Scratch mask (clobbered).
    pub ftmp1: MReg,
    /// Scratch mask (clobbered).
    pub ftmp2: MReg,
}

/// Emits the `VLOCK` macro of Fig. 3(B): attempts to acquire the
/// test-and-set locks `lock_base[vindex]` for the lanes of `f`; afterwards
/// `f` holds exactly the lanes whose locks were acquired. Aliased lanes
/// acquire at most once (vscattercond alias resolution).
pub fn emit_vlock(b: &mut ProgramBuilder, lock_base: Reg, vindex: VReg, f: MReg, regs: VLockRegs) {
    // Gather-linked locks indicated by f.
    b.vgatherlink(regs.ftmp1, regs.vtmp, lock_base, vindex, f);
    // Determine which locks are available (== 0).
    b.vcmp(CmpOp::Eq, regs.ftmp2, regs.vtmp, 0, Some(regs.ftmp1));
    // Attempt to obtain the available locks.
    b.vscattercond(f, regs.vone, lock_base, vindex, regs.ftmp2);
    // f now indicates locks acquired successfully.
}

/// Emits the `VUNLOCK` macro of Fig. 3(B): releases the locks
/// `lock_base[vindex]` for the lanes of `f` with a plain scatter of zeros.
pub fn emit_vunlock(
    b: &mut ProgramBuilder,
    lock_base: Reg,
    vindex: VReg,
    f: MReg,
    regs: VLockRegs,
) {
    b.vscatter(regs.vzero, lock_base, vindex, Some(f));
}

/// Emits a small pseudo-random per-thread backoff for lock-retry paths.
/// Conditional lock acquisition (the Fig. 3(B) idiom) can livelock in a
/// cyclic waits-for pattern when contending threads run in deterministic
/// lockstep; a per-thread LCG delay (0–30 cycles) breaks the symmetry,
/// exactly as software backoff does on real hardware. Clobbers `r_tmp`;
/// `r_state` carries the LCG state across retries (initialize it to the
/// thread id).
pub fn emit_backoff(b: &mut ProgramBuilder, r_state: Reg, r_tmp: Reg) {
    b.mul(r_state, r_state, 13);
    b.add(r_state, r_state, Reg::new(0));
    b.addi(r_state, r_state, 7);
    b.and(r_tmp, r_state, 15);
    let spin = b.here();
    b.addi(r_tmp, r_tmp, -1);
    b.bgt(r_tmp, 0, spin);
}

/// Emits a scalar test-and-set spin lock acquire on the lock word at
/// address `r_addr` (Base variant). Clobbers `r_t1`, `r_t2`. Requires the
/// `r31 == 1` convention.
pub fn emit_scalar_lock(b: &mut ProgramBuilder, r_addr: Reg, r_t1: Reg, r_t2: Reg) {
    let spin = b.here();
    b.ll(r_t1, r_addr, 0);
    b.bne(r_t1, 0, spin);
    b.sc(r_t2, Reg::new(31), r_addr, 0);
    b.beq(r_t2, 0, spin);
}

/// Emits a scalar lock release: a plain store of zero to `r_addr`.
/// Clobbers `r_t1`.
pub fn emit_scalar_unlock(b: &mut ProgramBuilder, r_addr: Reg, r_t1: Reg) {
    b.li(r_t1, 0);
    b.st(r_t1, r_addr, 0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use glsc_isa::ProgramBuilder;

    #[test]
    fn chunk_bounds_cover_exactly() {
        for n in [0usize, 1, 7, 16, 100] {
            for t in [1usize, 2, 3, 16] {
                let mut covered = 0;
                let mut prev_end = 0;
                for i in 0..t {
                    let (s, e) = chunk_bounds(n, t, i);
                    assert!(s <= e && e <= n);
                    assert!(s >= prev_end);
                    covered += e - s;
                    prev_end = e;
                }
                assert_eq!(covered, n, "n={n} t={t}");
            }
        }
    }

    #[test]
    fn mem_image_alignment_and_content() {
        let mut img = MemImage::new();
        let a = img.alloc_u32(&[1, 2, 3]);
        let b = img.alloc_zeroed(1);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 12);
        let mut back = Backing::new();
        img.apply(&mut back);
        assert_eq!(back.read_u32(a + 8), 3);
        assert_eq!(back.read_u32(b), 0);
    }

    #[test]
    fn publish_matches_apply() {
        let mut img = MemImage::new();
        let a = img.alloc_u32(&[1, 2, 3]);
        let b = img.alloc_f32(&[0.5, -2.0]);
        let c = img.alloc_zeroed(2000); // spans a page boundary
        let mut applied = Backing::new();
        img.apply(&mut applied);
        let mut mounted = Backing::new();
        mounted.set_base(img.publish());
        for addr in [a, a + 4, a + 8, a + 12, b, b + 4, c, c + 4096, c + 7996] {
            assert_eq!(
                applied.read_u32(addr),
                mounted.read_u32(addr),
                "at {addr:#x}"
            );
        }
        assert_eq!(mounted.read_u32(a + 8), 3);
        assert_eq!(mounted.read_f32(b + 4), -2.0);
        // Mounting is read-only sharing: nothing was materialized.
        assert_eq!(mounted.resident_pages(), 0);
    }

    #[test]
    fn approx_eq_tolerances() {
        assert!(approx_eq(1.0, 1.0, 0.0, 0.0));
        assert!(approx_eq(100.0, 100.001, 1e-4, 0.0));
        assert!(!approx_eq(100.0, 101.0, 1e-4, 0.0));
        assert!(approx_eq(0.0, 1e-6, 0.0, 1e-5));
    }

    #[test]
    fn partition_program_matches_chunk_bounds() {
        // Simulate the emitted partition code for several thread counts.
        use glsc_sim::{Machine, MachineConfig};
        let n = 37;
        for (cores, tpc) in [(1, 1), (2, 2), (4, 4)] {
            let total = cores * tpc;
            let mut b = ProgramBuilder::new();
            let (rs, re, rb, ro) = (Reg::new(2), Reg::new(3), Reg::new(4), Reg::new(5));
            emit_partition(&mut b, n, total, rs, re);
            // store start/end to 0x1000 + 8*gid
            b.li(rb, 0x1000);
            b.shl(ro, Reg::new(0), 3);
            b.add(rb, rb, ro);
            b.st(rs, rb, 0);
            b.st(re, rb, 4);
            b.halt();
            let mut m = Machine::new(MachineConfig::paper(cores, tpc, 1));
            m.load_program(b.build().unwrap());
            m.run().unwrap();
            for i in 0..total {
                let (s, e) = chunk_bounds(n, total, i);
                let addr = 0x1000 + 8 * i as u64;
                assert_eq!(
                    m.mem().backing().read_u32(addr),
                    s as u32,
                    "start t{i}/{total}"
                );
                assert_eq!(
                    m.mem().backing().read_u32(addr + 4),
                    e as u32,
                    "end t{i}/{total}"
                );
            }
        }
    }

    #[test]
    fn tail_mask_program() {
        use glsc_sim::{Machine, MachineConfig};
        // For i in {0, 4, 6}, end=7, width=4 the masks are 1111, 111, 1.
        for (i, expect) in [(0i64, 0b1111u32), (4, 0b111), (6, 0b1)] {
            let mut b = ProgramBuilder::new();
            emit_const_one(&mut b);
            let (ri, rend, rt, rb) = (Reg::new(2), Reg::new(3), Reg::new(4), Reg::new(5));
            b.li(ri, i);
            b.li(rend, 7);
            emit_tail_mask(&mut b, glsc_isa::MReg::new(0), ri, rend, 4, rt);
            b.m2r(rt, glsc_isa::MReg::new(0));
            b.li(rb, 0x1000);
            b.st(rt, rb, 0);
            b.halt();
            let mut m = Machine::new(MachineConfig::paper(1, 1, 4));
            m.load_program(b.build().unwrap());
            m.run().unwrap();
            assert_eq!(m.mem().backing().read_u32(0x1000), expect, "i={i}");
        }
    }

    #[test]
    fn backoff_sequences_deterministic_distinct_and_clobber_free() {
        use glsc_sim::{Machine, MachineConfig};
        // Each SMT thread runs emit_backoff ROUNDS times, storing the LCG
        // state after every round plus two sentinel registers, at
        // 0x2000 + tid*(ROUNDS+2)*4.
        const ROUNDS: usize = 4;
        let stride = (ROUNDS + 2) * 4;
        let build = || {
            let mut b = ProgramBuilder::new();
            let r = Reg::new;
            let (r_state, r_tmp, r_addr, r_s1, r_s2) = (r(20), r(21), r(22), r(11), r(12));
            b.li(r_s1, 0x111);
            b.li(r_s2, 0x222);
            b.mv(r_state, r(0));
            b.mul(r_addr, r(0), stride as i64);
            b.addi(r_addr, r_addr, 0x2000);
            for round in 0..ROUNDS {
                emit_backoff(&mut b, r_state, r_tmp);
                b.st(r_state, r_addr, (round * 4) as i64);
            }
            b.st(r_s1, r_addr, (ROUNDS * 4) as i64);
            b.st(r_s2, r_addr, (ROUNDS * 4 + 4) as i64);
            b.halt();
            b.build().unwrap()
        };
        let run = || {
            let mut m = Machine::new(MachineConfig::paper(1, 2, 4));
            m.load_program(build());
            m.run().unwrap();
            let mut seqs: Vec<Vec<u32>> = Vec::new();
            for tid in 0..2u64 {
                let base = 0x2000 + tid * stride as u64;
                let back = m.mem().backing();
                // Sentinels survive: emit_backoff clobbered nothing beyond
                // r_state / r_tmp.
                assert_eq!(back.read_u32(base + (ROUNDS as u64) * 4), 0x111);
                assert_eq!(back.read_u32(base + (ROUNDS as u64) * 4 + 4), 0x222);
                seqs.push(
                    (0..ROUNDS)
                        .map(|i| back.read_u32(base + 4 * i as u64))
                        .collect(),
                );
            }
            seqs
        };
        let seqs = run();
        // The observed states follow the LCG exactly: deterministic and
        // computable without running the machine.
        for (tid, seq) in seqs.iter().enumerate() {
            let mut state = tid as u64;
            for (round, &got) in seq.iter().enumerate() {
                state = state
                    .wrapping_mul(13)
                    .wrapping_add(tid as u64)
                    .wrapping_add(7);
                assert_eq!(u64::from(got), state, "tid {tid} round {round}");
            }
        }
        // Distinct across SMT threads, and stable across a re-run.
        assert_ne!(seqs[0], seqs[1], "threads must not back off in lockstep");
        assert_eq!(seqs, run(), "backoff must be run-to-run deterministic");
    }

    #[test]
    fn scalar_lock_mutual_exclusion() {
        use glsc_sim::{Machine, MachineConfig};
        // All threads increment a shared counter under a scalar lock.
        let mut b = ProgramBuilder::new();
        emit_const_one(&mut b);
        let (r_lock, r_cnt, r_t1, r_t2, r_i) = (
            Reg::new(2),
            Reg::new(3),
            Reg::new(4),
            Reg::new(5),
            Reg::new(6),
        );
        b.li(r_lock, 0x1000);
        b.li(r_cnt, 0x2000);
        b.li(r_i, 0);
        let top = b.here();
        b.sync_on();
        emit_scalar_lock(&mut b, r_lock, r_t1, r_t2);
        b.sync_off();
        b.ld(r_t1, r_cnt, 0);
        b.addi(r_t1, r_t1, 1);
        b.st(r_t1, r_cnt, 0);
        b.sync_on();
        emit_scalar_unlock(&mut b, r_lock, r_t2);
        b.sync_off();
        b.addi(r_i, r_i, 1);
        b.blt(r_i, 10, top);
        b.halt();
        let mut m = Machine::new(MachineConfig::paper(2, 2, 1));
        m.load_program(b.build().unwrap());
        m.run().unwrap();
        assert_eq!(m.mem().backing().read_u32(0x2000), 40);
        assert_eq!(m.mem().backing().read_u32(0x1000), 0, "lock released");
    }

    #[test]
    fn vlock_vunlock_mutual_exclusion() {
        use glsc_isa::VReg;
        use glsc_sim::{Machine, MachineConfig};
        // Each thread processes W lock-protected counters; lanes pick
        // deliberately aliased indices so VLOCK must serialize them.
        let width = 4;
        let mut b = ProgramBuilder::new();
        emit_const_one(&mut b);
        let (r_lock, r_cnt, r_i, r_t) = (Reg::new(2), Reg::new(3), Reg::new(4), Reg::new(5));
        let (v_idx, v_val) = (VReg::new(1), VReg::new(2));
        let regs = VLockRegs {
            vtmp: VReg::new(3),
            vone: VReg::new(4),
            vzero: VReg::new(5),
            ftmp1: glsc_isa::MReg::new(2),
            ftmp2: glsc_isa::MReg::new(3),
        };
        let f = glsc_isa::MReg::new(0);
        b.li(r_lock, 0x1000);
        b.li(r_cnt, 0x2000);
        b.vsplat(regs.vone, Reg::new(31));
        b.li(r_t, 0);
        b.vsplat(regs.vzero, r_t);
        // All lanes target counter 0 and counter 1 alternately: idx = lane & 1.
        b.viota(v_idx);
        b.vand(v_idx, v_idx, 1, None);
        b.li(r_i, 0);
        let top = b.here();
        let f_done = glsc_isa::MReg::new(1);
        b.sync_on();
        b.mall(f_done);
        let retry = b.here();
        b.mmov(f, f_done);
        emit_vlock(&mut b, r_lock, v_idx, f, regs);
        // Critical section: gather, +1, scatter (aliases resolved by VLOCK:
        // at most one lane per index holds the lock).
        b.vgather(v_val, r_cnt, v_idx, Some(f));
        b.vadd(v_val, v_val, 1, Some(f));
        b.vscatter(v_val, r_cnt, v_idx, Some(f));
        emit_vunlock(&mut b, r_lock, v_idx, f, regs);
        b.mxor(f_done, f_done, f);
        b.bmnz(f_done, retry);
        b.sync_off();
        b.addi(r_i, r_i, 1);
        b.blt(r_i, 5, top);
        b.halt();
        let mut m = Machine::new(MachineConfig::paper(2, 2, width));
        m.load_program(b.build().unwrap());
        m.run().unwrap();
        // 4 threads x 5 iters x 4 lanes = 80 increments, half per counter.
        assert_eq!(m.mem().backing().read_u32(0x2000), 40);
        assert_eq!(m.mem().backing().read_u32(0x2004), 40);
        assert_eq!(m.mem().backing().read_u32(0x1000), 0);
        assert_eq!(m.mem().backing().read_u32(0x1004), 0);
    }
}
