//! The §5.2 microbenchmark: atomic counter increments under four address
//! patterns that isolate GLSC's three benefit sources.
//!
//! Threads loop over precomputed index sequences and atomically increment
//! `counters[idx]`. The scenarios (quoting §5.2):
//!
//! * **A** — each SIMD element in a *distinct line* of a *shared* array:
//!   highlights **overlapping of L1 misses** (lines bounce between cores);
//! * **B** — thread-private indices, all `SIMD-width` elements on the
//!   *same line*: highlights **instruction reduction and L1-access
//!   reduction** (combining);
//! * **C** — thread-private, each element on a *different line* (all
//!   hits): isolates **instruction reduction** alone;
//! * **D** — all elements *identical*: no SIMD parallelism available, the
//!   worst case for GLSC (it serially resolves the aliases).
//!
//! The paper's Fig. 7 reports the Base/GLSC execution-time ratio per
//! scenario at widths 4 and 16 on the 4×4 machine.

use crate::common::{emit_backoff, emit_const_one, Dataset, MemImage, Variant, Workload};
use glsc_isa::{LaneSel, MReg, ProgramBuilder, Reg, VReg};
use glsc_rng::rngs::StdRng;
use glsc_rng::seq::SliceRandom;
use glsc_rng::{Rng, SeedableRng};
use glsc_sim::MachineConfig;
use std::collections::HashMap;

/// Words per 64-byte cache line.
const WORDS_PER_LINE: usize = 16;

/// The four address patterns of §5.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Distinct lines, shared array, cross-core misses.
    A,
    /// Same line per vector, thread-private, always hits.
    B,
    /// Distinct lines per vector, thread-private, always hits.
    C,
    /// All lanes the same address (full aliasing).
    D,
}

impl Scenario {
    /// All scenarios in paper order.
    pub const ALL: [Scenario; 4] = [Scenario::A, Scenario::B, Scenario::C, Scenario::D];

    /// Single-letter label as in Fig. 7.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::A => "A",
            Scenario::B => "B",
            Scenario::C => "C",
            Scenario::D => "D",
        }
    }
}

/// Parameters for [`Micro`].
#[derive(Clone, Debug)]
pub struct MicroParams {
    /// Iterations per thread (each processing `SIMD-width` increments).
    pub iters: usize,
    /// Private lines per thread for scenarios B/C/D.
    pub private_lines: usize,
    /// Lines in the shared array for scenario A.
    pub shared_lines: usize,
    /// RNG seed.
    pub seed: u64,
}

/// The microbenchmark.
#[derive(Clone, Debug)]
pub struct Micro {
    scenario: Scenario,
    params: MicroParams,
    backoff: bool,
}

impl Micro {
    /// Standard instance used by the Fig. 7 harness.
    pub fn new(scenario: Scenario, dataset: Dataset) -> Self {
        let params = match dataset {
            Dataset::A | Dataset::B => MicroParams {
                iters: 400,
                private_lines: 64,
                shared_lines: 512,
                seed: 71,
            },
            Dataset::Tiny => MicroParams {
                iters: 40,
                private_lines: 8,
                shared_lines: 32,
                seed: 72,
            },
        };
        Self {
            scenario,
            params,
            backoff: false,
        }
    }

    /// Instance with explicit parameters.
    pub fn with_params(scenario: Scenario, params: MicroParams) -> Self {
        Self {
            scenario,
            params,
            backoff: false,
        }
    }

    /// Enables the hardware-backoff retry variant: every atomic retry path
    /// first runs the [`emit_backoff`] LCG delay, the software analogue of
    /// the exponential-backoff arbitration the contention study compares
    /// against. The workload name gains a `+bo` suffix so cached results
    /// never collide with the plain variant.
    pub fn with_backoff(mut self) -> Self {
        self.backoff = true;
        self
    }

    /// Generates the per-thread index sequences (word indices into the
    /// counter array) for a machine shape.
    pub fn gen_indices(&self, threads: usize, width: usize) -> Vec<Vec<u32>> {
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let mut all = Vec::with_capacity(threads);
        for t in 0..threads {
            let mut seq = Vec::with_capacity(self.params.iters * width);
            for _ in 0..self.params.iters {
                match self.scenario {
                    Scenario::A => {
                        // W distinct random lines over the shared array.
                        let mut lines: Vec<usize> = Vec::with_capacity(width);
                        while lines.len() < width {
                            let l = rng.random_range(0..self.params.shared_lines);
                            if !lines.contains(&l) {
                                lines.push(l);
                            }
                        }
                        for l in lines {
                            let w = rng.random_range(0..WORDS_PER_LINE);
                            seq.push((l * WORDS_PER_LINE + w) as u32);
                        }
                    }
                    Scenario::B => {
                        let line = t * self.params.private_lines
                            + rng.random_range(0..self.params.private_lines);
                        let mut words: Vec<usize> = (0..WORDS_PER_LINE).collect();
                        words.shuffle(&mut rng);
                        for lane in 0..width {
                            seq.push((line * WORDS_PER_LINE + words[lane % WORDS_PER_LINE]) as u32);
                        }
                    }
                    Scenario::C => {
                        let mut lines: Vec<usize> = (0..self.params.private_lines).collect();
                        lines.shuffle(&mut rng);
                        for lane in 0..width {
                            let line = t * self.params.private_lines
                                + lines[lane % self.params.private_lines];
                            let w = rng.random_range(0..WORDS_PER_LINE);
                            seq.push((line * WORDS_PER_LINE + w) as u32);
                        }
                    }
                    Scenario::D => {
                        let line = t * self.params.private_lines
                            + rng.random_range(0..self.params.private_lines);
                        let w = rng.random_range(0..WORDS_PER_LINE);
                        for _ in 0..width {
                            seq.push((line * WORDS_PER_LINE + w) as u32);
                        }
                    }
                }
            }
            all.push(seq);
        }
        all
    }

    /// Number of counter words for a machine shape.
    fn counter_words(&self, threads: usize) -> usize {
        match self.scenario {
            Scenario::A => self.params.shared_lines * WORDS_PER_LINE,
            _ => threads * self.params.private_lines * WORDS_PER_LINE,
        }
    }

    /// Builds the runnable workload for a machine configuration.
    pub fn build(&self, variant: Variant, cfg: &MachineConfig) -> Workload {
        let width = cfg.simd_width;
        let threads = cfg.total_threads();
        let indices = self.gen_indices(threads, width);
        let counters = self.counter_words(threads);

        // Expected final counter values.
        let mut expected: HashMap<u32, u32> = HashMap::new();
        for seq in &indices {
            for i in seq {
                *expected.entry(*i).or_default() += 1;
            }
        }

        let mut image = MemImage::new();
        let a_counters = image.alloc_zeroed(counters);
        // One flat index array: thread t's sequence at t * iters * width.
        let per_thread = self.params.iters * width;
        let mut flat = Vec::with_capacity(threads * per_thread);
        for seq in &indices {
            flat.extend_from_slice(seq);
        }
        let a_idx = image.alloc_u32(&flat);

        let program = emit_update_loop(&UpdateLoop {
            variant,
            width,
            iters: self.params.iters,
            per_thread,
            a_idx,
            a_counters,
            backoff: self.backoff,
            add: 1,
            reads: 0,
        });

        let name = format!(
            "micro{}{}/{}/w{}",
            self.scenario.label(),
            if self.backoff { "+bo" } else { "" },
            variant.label(),
            width
        );
        Workload {
            name,
            program,
            image,
            validate: Box::new(move |backing| {
                for w in 0..counters as u32 {
                    let got = backing.read_u32(a_counters + 4 * w as u64);
                    let expect = expected.get(&w).copied().unwrap_or(0);
                    if got != expect {
                        return Err(format!("counter {w}: got {got}, expected {expect}"));
                    }
                }
                Ok(())
            }),
        }
    }
}

/// Code-shape parameters for the shared atomic-update loop emitter,
/// used by both the §5.2 microbenchmark and the pattern engine
/// (`crate::pattern`). With `add == 1` and `reads == 0` the emitted
/// stream is exactly the original microbenchmark program.
pub(crate) struct UpdateLoop {
    /// Base (ll/sc loop) or GLSC.
    pub variant: Variant,
    /// SIMD width (elements per vector).
    pub width: usize,
    /// Iterations per thread.
    pub iters: usize,
    /// Index words per thread in the flat index array.
    pub per_thread: usize,
    /// Address of the flat index array.
    pub a_idx: u64,
    /// Address of the counter table.
    pub a_counters: u64,
    /// Emit the LCG software-backoff delay on every retry path.
    pub backoff: bool,
    /// Immediate added to each touched counter (1 for plain increment).
    pub add: i64,
    /// Extra plain (non-atomic) gathers of the indexed words per
    /// iteration — the pattern engine's read/write-mix knob.
    pub reads: usize,
}

/// Emits the shared update loop: per iteration, load a vector of word
/// indices, optionally gather them `reads` times (plain loads), then
/// atomically add `add` to `counters[idx]` for every lane — with a
/// gather-link/scatter-conditional retry loop (GLSC) or a per-lane
/// ll/sc loop (Base).
pub(crate) fn emit_update_loop(p: &UpdateLoop) -> glsc_isa::Program {
    let UpdateLoop {
        variant,
        width,
        iters,
        per_thread,
        a_idx,
        a_counters,
        backoff,
        add,
        reads,
    } = *p;
    let mut b = ProgramBuilder::new();
    let r = Reg::new;
    let v = VReg::new;
    let m = MReg::new;
    let (r_my, r_cnt, r_it, r_addr, r_t1, r_t2, r_t3) = (r(2), r(3), r(4), r(5), r(6), r(7), r(8));
    // LCG state and spin scratch for the `+bo` backoff variant; untouched
    // by the plain variant so its code stream is byte-identical to pre-PR.
    let (r_bo_state, r_bo_tmp) = (r(9), r(10));
    let (v_idx, v_tmp) = (v(0), v(1));
    let (f_todo, f_tmp) = (m(0), m(1));

    emit_const_one(&mut b);
    b.mul(r_my, r(0), (per_thread * 4) as i64);
    b.addi(r_my, r_my, a_idx as i64);
    b.li(r_cnt, a_counters as i64);
    b.li(r_it, 0);
    if backoff {
        b.mv(r_bo_state, r(0));
    }
    let top = b.here();
    b.mul(r_addr, r_it, (width * 4) as i64);
    b.add(r_addr, r_addr, r_my);
    b.vload(v_idx, r_addr, 0, None);
    // Read/write-mix knob: plain (non-atomic) gathers of the same words
    // before the atomic update. Zero for the microbenchmark.
    for _ in 0..reads {
        b.vgather(v_tmp, r_cnt, v_idx, None);
    }
    b.sync_on();
    match variant {
        Variant::Glsc => {
            b.mall(f_todo);
            let retry = b.here();
            if backoff {
                emit_backoff(&mut b, r_bo_state, r_bo_tmp);
            }
            b.vgatherlink(f_tmp, v_tmp, r_cnt, v_idx, f_todo);
            b.vadd(v_tmp, v_tmp, add, Some(f_tmp));
            b.vscattercond(f_tmp, v_tmp, r_cnt, v_idx, f_tmp);
            b.mxor(f_todo, f_todo, f_tmp);
            b.bmnz(f_todo, retry);
        }
        Variant::Base => {
            for lane in 0..width {
                b.vextract(r_t1, v_idx, LaneSel::Imm(lane as u8));
                b.shl(r_t1, r_t1, 2);
                b.add(r_t1, r_t1, r_cnt);
                let retry = b.here();
                if backoff {
                    emit_backoff(&mut b, r_bo_state, r_bo_tmp);
                }
                b.ll(r_t2, r_t1, 0);
                b.addi(r_t2, r_t2, add);
                b.sc(r_t3, r_t2, r_t1, 0);
                b.beq(r_t3, 0, retry);
            }
        }
    }
    b.sync_off();
    b.addi(r_it, r_it, 1);
    b.blt(r_it, iters as i64, top);
    b.halt();
    b.build().expect("micro program assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::run_workload;

    fn check(scenario: Scenario, variant: Variant, cores: usize, tpc: usize, width: usize) {
        let cfg = MachineConfig::paper(cores, tpc, width);
        let w = Micro::new(scenario, Dataset::Tiny).build(variant, &cfg);
        run_workload(&w, &cfg).expect("runs and validates");
    }

    #[test]
    fn all_scenarios_both_variants_small() {
        for s in Scenario::ALL {
            check(s, Variant::Glsc, 1, 2, 4);
            check(s, Variant::Base, 1, 2, 4);
        }
    }

    #[test]
    fn multicore_scenario_a() {
        check(Scenario::A, Variant::Glsc, 2, 2, 4);
        check(Scenario::A, Variant::Base, 2, 2, 4);
    }

    #[test]
    fn backoff_variant_validates_and_is_distinct() {
        let cfg = MachineConfig::paper(2, 2, 4);
        let micro = Micro::new(Scenario::A, Dataset::Tiny);
        let plain = micro.clone().build(Variant::Glsc, &cfg);
        let bo = micro.clone().with_backoff().build(Variant::Glsc, &cfg);
        assert_eq!(bo.name, "microA+bo/GLSC/w4");
        assert_ne!(
            plain.fingerprint(),
            bo.fingerprint(),
            "cache keys must separate the variants"
        );
        run_workload(&bo, &cfg).expect("backoff variant validates");
        let bo_base = micro.with_backoff().build(Variant::Base, &cfg);
        run_workload(&bo_base, &cfg).expect("scalar backoff variant validates");
    }

    #[test]
    fn width_sixteen_scenario_d() {
        check(Scenario::D, Variant::Glsc, 1, 1, 16);
        check(Scenario::D, Variant::Base, 1, 1, 16);
    }

    #[test]
    fn scenario_b_combines_lines() {
        let cfg = MachineConfig::paper(1, 1, 4);
        let w = Micro::new(Scenario::B, Dataset::Tiny).build(Variant::Glsc, &cfg);
        let out = run_workload(&w, &cfg).unwrap();
        // Same-line lanes: combining must collapse most atomic accesses.
        assert!(
            out.report.gsu.combining_savings() * 2 > out.report.gsu.atomic_elems,
            "saved {} of {}",
            out.report.gsu.combining_savings(),
            out.report.gsu.atomic_elems
        );
    }

    #[test]
    fn scenario_d_aliases_every_vector() {
        let cfg = MachineConfig::paper(1, 1, 4);
        let w = Micro::new(Scenario::D, Dataset::Tiny).build(Variant::Glsc, &cfg);
        let out = run_workload(&w, &cfg).unwrap();
        assert!(out.report.gsu.sc_fail_alias > 0);
        // Every iteration needs width rounds: alias failures are
        // (width-1)/width of all first-round attempts.
        assert!(out.report.gsu.element_failure_rate() > 0.25);
    }

    #[test]
    fn scenario_indices_respect_their_patterns() {
        let micro_b = Micro::new(Scenario::B, Dataset::Tiny);
        for seq in micro_b.gen_indices(2, 4) {
            for chunk in seq.chunks(4) {
                let line = chunk[0] / 16;
                assert!(chunk.iter().all(|i| i / 16 == line), "B: same line");
                let mut sorted = chunk.to_vec();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), 4, "B: distinct words");
            }
        }
        let micro_d = Micro::new(Scenario::D, Dataset::Tiny);
        for seq in micro_d.gen_indices(2, 4) {
            for chunk in seq.chunks(4) {
                assert!(chunk.iter().all(|i| *i == chunk[0]), "D: identical");
            }
        }
        let micro_c = Micro::new(Scenario::C, Dataset::Tiny);
        for seq in micro_c.gen_indices(2, 4) {
            for chunk in seq.chunks(4) {
                let mut lines: Vec<u32> = chunk.iter().map(|i| i / 16).collect();
                lines.sort_unstable();
                lines.dedup();
                assert_eq!(lines.len(), 4, "C: distinct lines");
            }
        }
    }
}
