//! Differential atomicity oracle under fault injection (DESIGN.md §9):
//! retry-loop programs run on the cycle-level machine with a chaos plan
//! installed must leave memory bit-identical to the functional reference
//! interpreter running with no faults at all. Destructive faults (§3.2
//! reservation kills, evictions, jitter) may only slow a correct retry
//! loop down — never change what it computes.
//!
//! Each case prints its seed on failure for exact reproduction.

use glsc::isa::{MReg, Program, ProgramBuilder, Reg, VReg};
use glsc::sim::{reference, ChaosConfig, FaultPlan, Machine, MachineConfig};

fn r(i: u8) -> Reg {
    Reg::new(i)
}
fn v(i: u8) -> VReg {
    VReg::new(i)
}
fn m(i: u8) -> MReg {
    MReg::new(i)
}

const COUNTER: i64 = 0x4000;
const INPUT: i64 = 0x1_0000;
const HIST: i64 = 0x2_0000;
const PIXELS: i64 = 64;
const BINS: i64 = 7;

/// Fig. 2 scalar ll/sc increment loop, single-threaded.
fn llsc_counter_program(iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let (base, i, tmp, ok) = (r(2), r(3), r(4), r(5));
    b.li(base, COUNTER);
    b.li(i, 0);
    let top = b.here();
    b.sync_on();
    let retry = b.here();
    b.ll(tmp, base, 0);
    b.addi(tmp, tmp, 1);
    b.sc(ok, tmp, base, 0);
    b.beq(ok, 0, retry);
    b.sync_off();
    b.addi(i, i, 1);
    b.blt(i, iters, top);
    b.halt();
    b.build().unwrap()
}

/// Fig. 3 GLSC histogram: vgatherlink / vscattercond retry loop over the
/// not-yet-done mask, single-threaded.
fn glsc_histogram_program(width: usize) -> Program {
    let mut b = ProgramBuilder::new();
    let (r_in, r_hist, r_i, r_n, addr) = (r(2), r(3), r(4), r(6), r(7));
    let (v_in, v_bins, v_tmp) = (v(0), v(1), v(2));
    let (f_todo, f_tmp) = (m(0), m(1));
    b.li(r_in, INPUT);
    b.li(r_hist, HIST);
    b.li(r_n, PIXELS);
    b.li(r_i, 0);
    let outer = b.here();
    let done = b.label();
    b.bge(r_i, r_n, done);
    b.shl(addr, r_i, 2);
    b.add(addr, addr, r_in);
    b.vload(v_in, addr, 0, None);
    b.vmod(v_bins, v_in, BINS, None);
    b.sync_on();
    b.mall(f_todo);
    let retry = b.here();
    b.vgatherlink(f_tmp, v_tmp, r_hist, v_bins, f_todo);
    b.vadd(v_tmp, v_tmp, 1, Some(f_tmp));
    b.vscattercond(f_tmp, v_tmp, r_hist, v_bins, f_tmp);
    b.mxor(f_todo, f_todo, f_tmp);
    b.bmnz(f_todo, retry);
    b.sync_off();
    b.add(r_i, r_i, width as i64);
    b.jmp(outer);
    b.bind(done).unwrap();
    b.halt();
    b.build().unwrap()
}

fn seed_input(backing: &mut glsc::mem::Backing) {
    let mut x = 12345u32;
    for i in 0..PIXELS {
        x = x.wrapping_mul(1103515245).wrapping_add(12345);
        backing.write_u32(INPUT as u64 + 4 * i as u64, (x >> 8) % 1000);
    }
}

fn chaos_machine(width: usize, plan: FaultPlan) -> Machine {
    let cfg = MachineConfig::paper(1, 1, width)
        .with_max_cycles(100_000_000)
        .with_watchdog_window(Some(2_000_000));
    let mut machine = Machine::new(cfg);
    machine.mem_mut().install_fault_plan(plan);
    machine
}

#[test]
fn llsc_counter_under_chaos_matches_reference() {
    let iters = 200i64;
    let program = llsc_counter_program(iters);

    let mut ref_mem = glsc::mem::Backing::new();
    let ref_arch = reference::run_functional(&program, &mut ref_mem, 1, 1_000_000).unwrap();
    assert_eq!(ref_mem.read_u32(COUNTER as u64), iters as u32);

    let mut destructive = 0u64;
    let mut retried = 0u64;
    for seed in 0..8u64 {
        let plan = if seed % 2 == 0 {
            FaultPlan::from_seed(seed)
        } else {
            FaultPlan::new(ChaosConfig::aggressive(seed))
        };
        let mut machine = chaos_machine(1, plan);
        machine.load_program(program.clone());
        let report = machine.run().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(
            machine.mem().backing().read_u32(COUNTER as u64),
            ref_mem.read_u32(COUNTER as u64),
            "seed {seed}: counter diverged from the functional reference"
        );
        assert_eq!(
            machine.thread_arch(0).reg(r(3)),
            ref_arch.reg(r(3)),
            "seed {seed}: loop register diverged"
        );
        destructive += machine.mem().chaos_stats().unwrap().total_destructive();
        retried += report.lsu.scs.saturating_sub(iters as u64);
    }
    assert!(destructive > 0, "the sweep never injected a fault");
    assert!(
        retried > 0,
        "destroyed reservations never forced an sc retry"
    );
}

#[test]
fn glsc_histogram_under_chaos_matches_reference() {
    for width in [4usize, 8] {
        let program = glsc_histogram_program(width);

        let mut ref_mem = glsc::mem::Backing::new();
        seed_input(&mut ref_mem);
        reference::run_functional(&program, &mut ref_mem, width, 1_000_000).unwrap();

        for seed in [21u64, 22, 23] {
            let mut machine = chaos_machine(width, FaultPlan::new(ChaosConfig::aggressive(seed)));
            seed_input(machine.mem_mut().backing_mut());
            machine.load_program(program.clone());
            machine
                .run()
                .unwrap_or_else(|e| panic!("w{width} seed {seed}: {e}"));
            for bin in 0..BINS as u64 {
                assert_eq!(
                    machine.mem().backing().read_u32(HIST as u64 + 4 * bin),
                    ref_mem.read_u32(HIST as u64 + 4 * bin),
                    "w{width} seed {seed}: bin {bin} diverged from reference"
                );
            }
            for i in 0..PIXELS as u64 {
                assert_eq!(
                    machine.mem().backing().read_u32(INPUT as u64 + 4 * i),
                    ref_mem.read_u32(INPUT as u64 + 4 * i),
                    "w{width} seed {seed}: chaos corrupted the input array"
                );
            }
            assert!(
                machine.mem().chaos_stats().unwrap().total_destructive() > 0,
                "w{width} seed {seed}: aggressive plan injected nothing"
            );
        }
    }
}
