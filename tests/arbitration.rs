//! Arbitration-policy oracle on the contended microbenchmark: every
//! policy must preserve correctness (the validator is the atomicity
//! oracle), `AgedPriority` must *bound* consecutive store-conditional
//! failures — its anti-starvation guarantee — and must never be less
//! fair (Jain's index over per-thread SC retries) than first-committer-
//! wins `Free`. Chaos reservation-kill bursts must not defeat the bound:
//! priority lives in the arbiter, not the (killable) reservation bits.

use glsc::kernels::micro::{Micro, MicroParams, Scenario};
use glsc::kernels::{
    build_named, run_workload, run_workload_chaos, Dataset, Variant, KERNEL_NAMES,
};
use glsc::sim::{ArbitrationPolicy, ChaosConfig, MachineConfig, RunReport};

/// The contention regime: §5.2 scenario A (shared array, distinct lines)
/// on the full 4x4 machine, with the shared array squeezed to a 4-line
/// hot set so all 16 threads fight over every line.
fn hot_micro() -> Micro {
    Micro::with_params(
        Scenario::A,
        MicroParams {
            iters: 40,
            private_lines: 8,
            shared_lines: 4,
            seed: 72,
        },
    )
}

fn contended(policy: ArbitrationPolicy) -> RunReport {
    let cfg = MachineConfig::paper(4, 4, 4).with_arbitration(policy);
    let w = hot_micro().build(Variant::Glsc, &cfg);
    run_workload(&w, &cfg)
        .unwrap_or_else(|e| panic!("{policy:?}: {e}"))
        .report
}

/// Streak ceiling asserted for `AgedPriority` on the hot set, fault-free
/// and under chaos. The measured fault-free value is 72 (deterministic);
/// `Free` measures 276 on the same workload. The margin covers the
/// chaos runs, whose kill bursts lengthen individual streaks but must
/// not unbound them.
const AGED_STREAK_BOUND: u64 = 160;

#[test]
fn aged_priority_bounds_streaks_and_is_at_least_as_fair() {
    let free = contended(ArbitrationPolicy::Free);
    let aged = contended(ArbitrationPolicy::AgedPriority);
    assert!(
        free.max_sc_failure_streak() > AGED_STREAK_BOUND,
        "hot set no longer produces long free-for-all streaks (measured {})",
        free.max_sc_failure_streak()
    );
    assert!(
        aged.max_sc_failure_streak() <= AGED_STREAK_BOUND,
        "AgedPriority streak {} exceeds its bound",
        aged.max_sc_failure_streak()
    );
    assert!(
        aged.sc_retry_fairness() >= free.sc_retry_fairness(),
        "AgedPriority less fair than Free: {:.4} < {:.4}",
        aged.sc_retry_fairness(),
        free.sc_retry_fairness()
    );
    // Work still balances: every policy completes the same elements.
    let elems = |r: &RunReport| r.threads.iter().map(|t| t.elems_completed).sum::<u64>();
    assert_eq!(elems(&free), elems(&aged));
    assert!(elems(&free) > 0, "no atomic elements completed");
}

#[test]
fn aged_priority_bound_survives_chaos_kill_bursts() {
    // Seeded reservation-kill bursts clear the L1 reservation bits the
    // winning thread depends on — but age priority lives in the arbiter,
    // not in the (killable) reservation state, so the victim re-links and
    // still cannot be beaten by younger threads: the streak bound holds
    // and the result still validates.
    let cfg = MachineConfig::paper(4, 4, 4)
        .with_arbitration(ArbitrationPolicy::AgedPriority)
        .with_max_cycles(2_000_000_000)
        .with_watchdog_window(Some(5_000_000));
    let w = hot_micro().build(Variant::Glsc, &cfg);
    for seed in [0x5EED, 0xB00B5, 7] {
        let (out, stats) = run_workload_chaos(&w, &cfg, ChaosConfig::from_seed(seed))
            .unwrap_or_else(|e| panic!("{e}"));
        assert!(
            stats.reservations_cleared + stats.core_flushes > 0,
            "seed {seed}: chaos cleared no reservations, drill is vacuous"
        );
        assert!(
            out.report.max_sc_failure_streak() <= AGED_STREAK_BOUND,
            "seed {seed}: chaos defeated the streak bound ({})",
            out.report.max_sc_failure_streak()
        );
    }
}

#[test]
fn nack_holdoff_validates_and_actually_holds_off() {
    let free = contended(ArbitrationPolicy::Free);
    let nack = contended(ArbitrationPolicy::NackHoldoff { window: 64 });
    // The holdoff visibly changes the machine's timing (it is not Free in
    // disguise) while the validator inside `contended` already proved the
    // counters still end up correct.
    assert_ne!(free.cycles, nack.cycles, "holdoff had no timing effect");
    // A NACKed loser cannot steal the line mid-window, so winners retire
    // sooner and the longest consecutive-failure run shrinks (measured
    // 194 vs 276). Total SC *attempts* rise slightly: port NACKs are
    // cheap, so the loser's retry loop spins faster during its window.
    assert!(
        nack.max_sc_failure_streak() < free.max_sc_failure_streak(),
        "holdoff should derate the longest failure run: {} >= {}",
        nack.max_sc_failure_streak(),
        free.max_sc_failure_streak()
    );
    // Work still balances across policies.
    let elems = |r: &RunReport| r.threads.iter().map(|t| t.elems_completed).sum::<u64>();
    assert_eq!(elems(&free), elems(&nack));
}

#[test]
fn every_kernel_validates_under_every_policy() {
    // Robustness sweep: arbitration must never break correctness, on the
    // scalar ll/sc (Base) path as much as the GLSC path.
    for policy in [
        ArbitrationPolicy::NackHoldoff { window: 64 },
        ArbitrationPolicy::AgedPriority,
    ] {
        let cfg = MachineConfig::paper(2, 2, 4).with_arbitration(policy);
        for kernel in KERNEL_NAMES {
            let w = build_named(kernel, Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");
            run_workload(&w, &cfg).unwrap_or_else(|e| panic!("{policy:?}: {e}"));
        }
        for variant in [Variant::Base, Variant::Glsc] {
            let w = hot_micro().build(variant, &cfg);
            run_workload(&w, &cfg).unwrap_or_else(|e| panic!("{policy:?}: {e}"));
        }
    }
}

#[test]
fn backoff_variant_runs_under_every_policy() {
    // The hardware-backoff program variant composes with each policy and
    // still validates; under every policy, backoff reduces the retry
    // pressure (total SC attempts) relative to that policy's tight loop.
    for policy in [
        ArbitrationPolicy::Free,
        ArbitrationPolicy::NackHoldoff { window: 64 },
        ArbitrationPolicy::AgedPriority,
    ] {
        let cfg = MachineConfig::paper(4, 4, 4).with_arbitration(policy);
        let attempts = |r: &RunReport| r.mem.sc_threads.iter().map(|t| t.attempts).sum::<u64>();
        let tight = run_workload(&hot_micro().build(Variant::Glsc, &cfg), &cfg)
            .unwrap_or_else(|e| panic!("{policy:?}: {e}"))
            .report;
        let w = hot_micro().with_backoff().build(Variant::Glsc, &cfg);
        let bo = run_workload(&w, &cfg)
            .unwrap_or_else(|e| panic!("{policy:?}: {e}"))
            .report;
        assert!(
            attempts(&bo) < attempts(&tight),
            "{policy:?}: backoff did not reduce retry pressure: {} >= {}",
            attempts(&bo),
            attempts(&tight)
        );
    }
}
