//! Differential testing: random single-threaded programs must produce
//! identical architectural and memory state on the cycle-level machine and
//! the functional reference interpreter.
//!
//! Originally written with `proptest`; the offline build environment cannot
//! fetch it, so the cases now run as seeded loops over `glsc-rng`. Each
//! case prints its seed on failure for reproduction.

use glsc::isa::{AluOp, CmpOp, FpOp, MReg, Program, ProgramBuilder, Reg, VReg};
use glsc::sim::{reference, Machine, MachineConfig};
use glsc_rng::rngs::StdRng;
use glsc_rng::{Rng, SeedableRng};

const WINDOW_BASE: i64 = 0x1_0000;
const WINDOW_WORDS: u32 = 256;

/// One random instruction "recipe".
#[derive(Clone, Debug)]
enum Op {
    Li { rd: u8, imm: i32 },
    Alu { op: AluOp, rd: u8, rs: u8, imm: i32 },
    AluRr { op: AluOp, rd: u8, rs: u8, rt: u8 },
    Fp { op: FpOp, rd: u8, rs: u8, rt: u8 },
    Cmp { op: CmpOp, rd: u8, rs: u8, imm: i32 },
    Load { rd: u8, word: u32 },
    Store { rs: u8, word: u32 },
    Ll { rd: u8, word: u32 },
    Sc { rd: u8, rs: u8, word: u32 },
    VAluImm { op: AluOp, vd: u8, vs: u8, imm: i32 },
    VFp { op: FpOp, vd: u8, vs: u8, vt: u8 },
    VSplat { vd: u8, rs: u8 },
    VIota { vd: u8 },
    VCmp { op: CmpOp, fd: u8, vs: u8, imm: i32 },
    MaskCombine { fd: u8, fa: u8, fb: u8, kind: u8 },
    VLoad { vd: u8, word: u32 },
    VStore { vs: u8, word: u32 },
    VGather { vd: u8, vidx: u8 },
    VScatter { vs: u8, vidx: u8 },
    GatherLink { fd: u8, vd: u8, vidx: u8, fsrc: u8 },
    ScatterCond { fd: u8, vs: u8, vidx: u8, fsrc: u8 },
}

const ALU_OPS: [AluOp; 12] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Div,
    AluOp::Rem,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::Shr,
    AluOp::Min,
    AluOp::Max,
];

const FP_OPS: [FpOp; 6] = [
    FpOp::Add,
    FpOp::Sub,
    FpOp::Mul,
    FpOp::Div,
    FpOp::Min,
    FpOp::Max,
];

const CMP_OPS: [CmpOp; 6] = [
    CmpOp::Eq,
    CmpOp::Ne,
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
];

fn random_op(rng: &mut StdRng) -> Op {
    // r3..r11: leave r0/r1 (ids) and r2 (window base) alone.
    let r = |rng: &mut StdRng| rng.random_range(3..12u8);
    let v = |rng: &mut StdRng| rng.random_range(0..8u8);
    let f = |rng: &mut StdRng| rng.random_range(0..4u8);
    let word = |rng: &mut StdRng| rng.random_range(0..WINDOW_WORDS);
    let imm = |rng: &mut StdRng| rng.random::<u32>() as i32;
    let alu = |rng: &mut StdRng| ALU_OPS[rng.random_range(0..ALU_OPS.len())];
    let fp = |rng: &mut StdRng| FP_OPS[rng.random_range(0..FP_OPS.len())];
    let cmp = |rng: &mut StdRng| CMP_OPS[rng.random_range(0..CMP_OPS.len())];
    match rng.random_range(0..21usize) {
        0 => Op::Li {
            rd: r(rng),
            imm: imm(rng),
        },
        1 => Op::Alu {
            op: alu(rng),
            rd: r(rng),
            rs: r(rng),
            imm: imm(rng),
        },
        2 => Op::AluRr {
            op: alu(rng),
            rd: r(rng),
            rs: r(rng),
            rt: r(rng),
        },
        3 => Op::Fp {
            op: fp(rng),
            rd: r(rng),
            rs: r(rng),
            rt: r(rng),
        },
        4 => Op::Cmp {
            op: cmp(rng),
            rd: r(rng),
            rs: r(rng),
            imm: imm(rng),
        },
        5 => Op::Load {
            rd: r(rng),
            word: word(rng),
        },
        6 => Op::Store {
            rs: r(rng),
            word: word(rng),
        },
        7 => Op::Ll {
            rd: r(rng),
            word: word(rng),
        },
        8 => Op::Sc {
            rd: r(rng),
            rs: r(rng),
            word: word(rng),
        },
        9 => Op::VAluImm {
            op: alu(rng),
            vd: v(rng),
            vs: v(rng),
            imm: imm(rng),
        },
        10 => Op::VFp {
            op: fp(rng),
            vd: v(rng),
            vs: v(rng),
            vt: v(rng),
        },
        11 => Op::VSplat {
            vd: v(rng),
            rs: r(rng),
        },
        12 => Op::VIota { vd: v(rng) },
        13 => Op::VCmp {
            op: cmp(rng),
            fd: f(rng),
            vs: v(rng),
            imm: imm(rng),
        },
        14 => Op::MaskCombine {
            fd: f(rng),
            fa: f(rng),
            fb: f(rng),
            kind: rng.random_range(0..4u8),
        },
        15 => Op::VLoad {
            vd: v(rng),
            word: word(rng),
        },
        16 => Op::VStore {
            vs: v(rng),
            word: word(rng),
        },
        17 => Op::VGather {
            vd: v(rng),
            vidx: v(rng),
        },
        18 => Op::VScatter {
            vs: v(rng),
            vidx: v(rng),
        },
        19 => Op::GatherLink {
            fd: f(rng),
            vd: v(rng),
            vidx: v(rng),
            fsrc: f(rng),
        },
        _ => Op::ScatterCond {
            fd: f(rng),
            vs: v(rng),
            vidx: v(rng),
            fsrc: f(rng),
        },
    }
}

/// Assembles the recipe into a straight-line program. Indexed ops bound
/// their index vector into the window first (`vand idx, idx, 255`), using
/// v15 as scratch so the recipe's registers are untouched.
fn assemble(ops: &[Op], width: usize) -> Program {
    let mut b = ProgramBuilder::new();
    let base = Reg::new(2);
    let vidx_scratch = VReg::new(15);
    b.li(base, WINDOW_BASE);
    let vload_off = |w: u32| {
        // Keep the full vector inside the window.
        (4 * w.min(WINDOW_WORDS.saturating_sub(width as u32))) as i64
    };
    for op in ops {
        match *op {
            Op::Li { rd, imm } => {
                b.li(Reg::new(rd), imm as i64);
            }
            Op::Alu { op, rd, rs, imm } => {
                b.alu(op, Reg::new(rd), Reg::new(rs), imm as i64);
            }
            Op::AluRr { op, rd, rs, rt } => {
                b.alu(op, Reg::new(rd), Reg::new(rs), Reg::new(rt));
            }
            Op::Fp { op, rd, rs, rt } => {
                b.emit(glsc::isa::Instr::Fp {
                    op,
                    rd: Reg::new(rd),
                    rs: Reg::new(rs),
                    rt: Reg::new(rt),
                });
            }
            Op::Cmp { op, rd, rs, imm } => {
                b.cmp(op, Reg::new(rd), Reg::new(rs), imm as i64);
            }
            Op::Load { rd, word } => {
                b.ld(Reg::new(rd), base, (4 * word) as i64);
            }
            Op::Store { rs, word } => {
                b.st(Reg::new(rs), base, (4 * word) as i64);
            }
            Op::Ll { rd, word } => {
                b.ll(Reg::new(rd), base, (4 * word) as i64);
            }
            Op::Sc { rd, rs, word } => {
                b.sc(Reg::new(rd), Reg::new(rs), base, (4 * word) as i64);
            }
            Op::VAluImm { op, vd, vs, imm } => {
                b.valu(op, VReg::new(vd), VReg::new(vs), imm as i64, None);
            }
            Op::VFp { op, vd, vs, vt } => {
                b.vfp(op, VReg::new(vd), VReg::new(vs), VReg::new(vt), None);
            }
            Op::VSplat { vd, rs } => {
                b.vsplat(VReg::new(vd), Reg::new(rs));
            }
            Op::VIota { vd } => {
                b.viota(VReg::new(vd));
            }
            Op::VCmp { op, fd, vs, imm } => {
                b.vcmp(op, MReg::new(fd), VReg::new(vs), imm as i64, None);
            }
            Op::MaskCombine { fd, fa, fb, kind } => {
                match kind {
                    0 => b.mand(MReg::new(fd), MReg::new(fa), MReg::new(fb)),
                    1 => b.mor(MReg::new(fd), MReg::new(fa), MReg::new(fb)),
                    2 => b.mxor(MReg::new(fd), MReg::new(fa), MReg::new(fb)),
                    _ => b.mnot(MReg::new(fd), MReg::new(fa)),
                };
            }
            Op::VLoad { vd, word } => {
                b.vload(VReg::new(vd), base, vload_off(word), None);
            }
            Op::VStore { vs, word } => {
                b.vstore(VReg::new(vs), base, vload_off(word), None);
            }
            Op::VGather { vd, vidx } => {
                b.vand(
                    vidx_scratch,
                    VReg::new(vidx),
                    (WINDOW_WORDS - 1) as i64,
                    None,
                );
                b.vgather(VReg::new(vd), base, vidx_scratch, None);
            }
            Op::VScatter { vs, vidx } => {
                b.vand(
                    vidx_scratch,
                    VReg::new(vidx),
                    (WINDOW_WORDS - 1) as i64,
                    None,
                );
                b.vscatter(VReg::new(vs), base, vidx_scratch, None);
            }
            Op::GatherLink { fd, vd, vidx, fsrc } => {
                b.vand(
                    vidx_scratch,
                    VReg::new(vidx),
                    (WINDOW_WORDS - 1) as i64,
                    None,
                );
                b.vgatherlink(
                    MReg::new(fd),
                    VReg::new(vd),
                    base,
                    vidx_scratch,
                    MReg::new(fsrc),
                );
            }
            Op::ScatterCond { fd, vs, vidx, fsrc } => {
                b.vand(
                    vidx_scratch,
                    VReg::new(vidx),
                    (WINDOW_WORDS - 1) as i64,
                    None,
                );
                b.vscattercond(
                    MReg::new(fd),
                    VReg::new(vs),
                    base,
                    vidx_scratch,
                    MReg::new(fsrc),
                );
            }
        }
    }
    b.halt();
    b.build().expect("straight-line program assembles")
}

fn initial_memory() -> Vec<u32> {
    (0..WINDOW_WORDS)
        .map(|i| i.wrapping_mul(2654435761))
        .collect()
}

#[test]
fn machine_matches_functional_reference() {
    const WIDTHS: [usize; 4] = [1, 4, 8, 16];
    for seed in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0xD1FF_0001 ^ seed);
        let n = rng.random_range(1..40usize);
        let ops: Vec<Op> = (0..n).map(|_| random_op(&mut rng)).collect();
        let width = WIDTHS[rng.random_range(0..WIDTHS.len())];
        let program = assemble(&ops, width);

        // Functional reference.
        let mut ref_mem = glsc::mem::Backing::new();
        ref_mem.write_u32_slice(WINDOW_BASE as u64, &initial_memory());
        let ref_arch = reference::run_functional(&program, &mut ref_mem, width, 1_000_000)
            .expect("straight-line program terminates");

        // Cycle-level machine (1 core, 1 thread).
        let mut machine = Machine::new(MachineConfig::paper(1, 1, width));
        machine
            .mem_mut()
            .backing_mut()
            .write_u32_slice(WINDOW_BASE as u64, &initial_memory());
        machine.load_program(program);
        machine.run().expect("machine run succeeds");

        // Compare the memory window.
        for w in 0..WINDOW_WORDS as u64 {
            let addr = WINDOW_BASE as u64 + 4 * w;
            assert_eq!(
                machine.mem().backing().read_u32(addr),
                ref_mem.read_u32(addr),
                "seed {seed}: memory diverged at word {w}"
            );
        }
        // Compare scalar registers, vector registers, and masks.
        let arch = machine.thread_arch(0);
        for i in 0..32u8 {
            assert_eq!(
                arch.reg(Reg::new(i)),
                ref_arch.reg(Reg::new(i)),
                "seed {seed}: r{i} diverged"
            );
        }
        for i in 0..16u8 {
            assert_eq!(
                arch.vreg(VReg::new(i)),
                ref_arch.vreg(VReg::new(i)),
                "seed {seed}: v{i} diverged"
            );
        }
        for i in 0..8u8 {
            assert_eq!(
                arch.mreg(MReg::new(i)),
                ref_arch.mreg(MReg::new(i)),
                "seed {seed}: f{i} diverged"
            );
        }
    }
}

/// The event-driven fast-forward in `Machine::run` must be an invisible
/// optimization: its `RunReport` (cycles, every per-thread stall counter,
/// memory/LSU/GSU stats) and final memory must be identical to the naive
/// single-stepped loop, on random programs across machine shapes.
#[test]
fn fast_forward_matches_naive_random_programs() {
    const SHAPES: [(usize, usize); 3] = [(1, 1), (2, 2), (4, 1)];
    const WIDTHS: [usize; 3] = [1, 4, 8];
    for seed in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0xD1FF_0002 ^ seed);
        let n = rng.random_range(1..40usize);
        let ops: Vec<Op> = (0..n).map(|_| random_op(&mut rng)).collect();
        let width = WIDTHS[rng.random_range(0..WIDTHS.len())];
        let (cores, tpc) = SHAPES[rng.random_range(0..SHAPES.len())];
        let program = assemble(&ops, width);

        let build = || {
            let mut m = Machine::new(MachineConfig::paper(cores, tpc, width));
            m.mem_mut()
                .backing_mut()
                .write_u32_slice(WINDOW_BASE as u64, &initial_memory());
            m.load_program(program.clone());
            m
        };
        let mut fast = build();
        let fast_report = fast.run().expect("fast-forward run succeeds");
        let mut naive = build();
        let naive_report = naive.run_naive().expect("naive run succeeds");

        assert_eq!(
            fast_report, naive_report,
            "seed {seed} ({cores}x{tpc} w{width}): report diverged"
        );
        for w in 0..WINDOW_WORDS as u64 {
            let addr = WINDOW_BASE as u64 + 4 * w;
            assert_eq!(
                fast.mem().backing().read_u32(addr),
                naive.mem().backing().read_u32(addr),
                "seed {seed}: memory diverged at word {w}"
            );
        }
    }
}

/// Fast-forward vs naive on the real workloads: all seven kernels, both
/// variants, across the four Fig. 6 machine shapes at tiny scale.
#[test]
fn fast_forward_matches_naive_all_kernels() {
    use glsc::kernels::{build_named, Dataset, Variant, KERNEL_NAMES};
    const SHAPES: [(usize, usize); 4] = [(1, 1), (1, 4), (4, 1), (4, 4)];
    for kernel in KERNEL_NAMES {
        for (cores, tpc) in SHAPES {
            for variant in [Variant::Base, Variant::Glsc] {
                let cfg = MachineConfig::paper(cores, tpc, 4);
                let w = build_named(kernel, Dataset::Tiny, variant, &cfg).expect("known kernel");
                let build = || {
                    let mut m = Machine::new(cfg.clone());
                    w.image.apply(m.mem_mut().backing_mut());
                    m.load_program(w.program.clone());
                    m
                };
                let fast = build().run().unwrap_or_else(|e| {
                    panic!("{kernel} {cores}x{tpc} {variant:?}: fast run failed: {e}")
                });
                let naive = build().run_naive().unwrap_or_else(|e| {
                    panic!("{kernel} {cores}x{tpc} {variant:?}: naive run failed: {e}")
                });
                assert_eq!(
                    fast, naive,
                    "{kernel} {cores}x{tpc} {variant:?}: fast-forward report diverged from naive"
                );
            }
        }
    }
}
