//! Differential testing: random single-threaded programs must produce
//! identical architectural and memory state on the cycle-level machine and
//! the functional reference interpreter.

use glsc::isa::{AluOp, CmpOp, FpOp, MReg, Program, ProgramBuilder, Reg, VReg};
use glsc::sim::{reference, Machine, MachineConfig};
use proptest::prelude::*;

const WINDOW_BASE: i64 = 0x1_0000;
const WINDOW_WORDS: u32 = 256;

/// One random instruction "recipe"; kept coarse so shrinking is useful.
#[derive(Clone, Debug)]
enum Op {
    Li { rd: u8, imm: i32 },
    Alu { op: AluOp, rd: u8, rs: u8, imm: i32 },
    AluRr { op: AluOp, rd: u8, rs: u8, rt: u8 },
    Fp { op: FpOp, rd: u8, rs: u8, rt: u8 },
    Cmp { op: CmpOp, rd: u8, rs: u8, imm: i32 },
    Load { rd: u8, word: u32 },
    Store { rs: u8, word: u32 },
    Ll { rd: u8, word: u32 },
    Sc { rd: u8, rs: u8, word: u32 },
    VAluImm { op: AluOp, vd: u8, vs: u8, imm: i32 },
    VFp { op: FpOp, vd: u8, vs: u8, vt: u8 },
    VSplat { vd: u8, rs: u8 },
    VIota { vd: u8 },
    VCmp { op: CmpOp, fd: u8, vs: u8, imm: i32 },
    MaskOp { fd: u8, fa: u8, fb: u8, kind: u8 },
    VLoad { vd: u8, word: u32 },
    VStore { vs: u8, word: u32 },
    VGather { vd: u8, vidx: u8 },
    VScatter { vs: u8, vidx: u8 },
    GatherLink { fd: u8, vd: u8, vidx: u8, fsrc: u8 },
    ScatterCond { fd: u8, vs: u8, vidx: u8, fsrc: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let r = 3u8..12; // leave r0/r1 (ids) and r2 (window base) alone
    let v = 0u8..8;
    let f = 0u8..4;
    let word = 0u32..WINDOW_WORDS;
    let alu = prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Rem),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
        Just(AluOp::Min),
        Just(AluOp::Max),
    ];
    let fp = prop_oneof![
        Just(FpOp::Add),
        Just(FpOp::Sub),
        Just(FpOp::Mul),
        Just(FpOp::Div),
        Just(FpOp::Min),
        Just(FpOp::Max),
    ];
    let cmp = prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ];
    prop_oneof![
        (r.clone(), any::<i32>()).prop_map(|(rd, imm)| Op::Li { rd, imm }),
        (alu.clone(), r.clone(), r.clone(), any::<i32>())
            .prop_map(|(op, rd, rs, imm)| Op::Alu { op, rd, rs, imm }),
        (alu.clone(), r.clone(), r.clone(), r.clone())
            .prop_map(|(op, rd, rs, rt)| Op::AluRr { op, rd, rs, rt }),
        (fp.clone(), r.clone(), r.clone(), r.clone())
            .prop_map(|(op, rd, rs, rt)| Op::Fp { op, rd, rs, rt }),
        (cmp.clone(), r.clone(), r.clone(), any::<i32>())
            .prop_map(|(op, rd, rs, imm)| Op::Cmp { op, rd, rs, imm }),
        (r.clone(), word.clone()).prop_map(|(rd, word)| Op::Load { rd, word }),
        (r.clone(), word.clone()).prop_map(|(rs, word)| Op::Store { rs, word }),
        (r.clone(), word.clone()).prop_map(|(rd, word)| Op::Ll { rd, word }),
        (r.clone(), r.clone(), word.clone()).prop_map(|(rd, rs, word)| Op::Sc { rd, rs, word }),
        (alu, v.clone(), v.clone(), any::<i32>())
            .prop_map(|(op, vd, vs, imm)| Op::VAluImm { op, vd, vs, imm }),
        (fp, v.clone(), v.clone(), v.clone()).prop_map(|(op, vd, vs, vt)| Op::VFp { op, vd, vs, vt }),
        (v.clone(), r.clone()).prop_map(|(vd, rs)| Op::VSplat { vd, rs }),
        v.clone().prop_map(|vd| Op::VIota { vd }),
        (cmp, f.clone(), v.clone(), any::<i32>())
            .prop_map(|(op, fd, vs, imm)| Op::VCmp { op, fd, vs, imm }),
        (f.clone(), f.clone(), f.clone(), 0u8..4)
            .prop_map(|(fd, fa, fb, kind)| Op::MaskOp { fd, fa, fb, kind }),
        (v.clone(), word.clone()).prop_map(|(vd, word)| Op::VLoad { vd, word }),
        (v.clone(), word).prop_map(|(vs, word)| Op::VStore { vs, word }),
        (v.clone(), v.clone()).prop_map(|(vd, vidx)| Op::VGather { vd, vidx }),
        (v.clone(), v.clone()).prop_map(|(vs, vidx)| Op::VScatter { vs, vidx }),
        (f.clone(), v.clone(), v.clone(), f.clone())
            .prop_map(|(fd, vd, vidx, fsrc)| Op::GatherLink { fd, vd, vidx, fsrc }),
        (f.clone(), v.clone(), v.clone(), f)
            .prop_map(|(fd, vs, vidx, fsrc)| Op::ScatterCond { fd, vs, vidx, fsrc }),
    ]
}

/// Assembles the recipe into a straight-line program. Indexed ops bound
/// their index vector into the window first (`vand idx, idx, 255`), using
/// v15 as scratch so the recipe's registers are untouched.
fn assemble(ops: &[Op], width: usize) -> Program {
    let mut b = ProgramBuilder::new();
    let base = Reg::new(2);
    let vidx_scratch = VReg::new(15);
    b.li(base, WINDOW_BASE);
    let vload_off = |w: u32| {
        // Keep the full vector inside the window.
        (4 * w.min(WINDOW_WORDS.saturating_sub(width as u32))) as i64
    };
    for op in ops {
        match *op {
            Op::Li { rd, imm } => {
                b.li(Reg::new(rd), imm as i64);
            }
            Op::Alu { op, rd, rs, imm } => {
                b.alu(op, Reg::new(rd), Reg::new(rs), imm as i64);
            }
            Op::AluRr { op, rd, rs, rt } => {
                b.alu(op, Reg::new(rd), Reg::new(rs), Reg::new(rt));
            }
            Op::Fp { op, rd, rs, rt } => {
                b.emit(glsc::isa::Instr::Fp {
                    op,
                    rd: Reg::new(rd),
                    rs: Reg::new(rs),
                    rt: Reg::new(rt),
                });
            }
            Op::Cmp { op, rd, rs, imm } => {
                b.cmp(op, Reg::new(rd), Reg::new(rs), imm as i64);
            }
            Op::Load { rd, word } => {
                b.ld(Reg::new(rd), base, (4 * word) as i64);
            }
            Op::Store { rs, word } => {
                b.st(Reg::new(rs), base, (4 * word) as i64);
            }
            Op::Ll { rd, word } => {
                b.ll(Reg::new(rd), base, (4 * word) as i64);
            }
            Op::Sc { rd, rs, word } => {
                b.sc(Reg::new(rd), Reg::new(rs), base, (4 * word) as i64);
            }
            Op::VAluImm { op, vd, vs, imm } => {
                b.valu(op, VReg::new(vd), VReg::new(vs), imm as i64, None);
            }
            Op::VFp { op, vd, vs, vt } => {
                b.vfp(op, VReg::new(vd), VReg::new(vs), VReg::new(vt), None);
            }
            Op::VSplat { vd, rs } => {
                b.vsplat(VReg::new(vd), Reg::new(rs));
            }
            Op::VIota { vd } => {
                b.viota(VReg::new(vd));
            }
            Op::VCmp { op, fd, vs, imm } => {
                b.vcmp(op, MReg::new(fd), VReg::new(vs), imm as i64, None);
            }
            Op::MaskOp { fd, fa, fb, kind } => {
                match kind {
                    0 => b.mand(MReg::new(fd), MReg::new(fa), MReg::new(fb)),
                    1 => b.mor(MReg::new(fd), MReg::new(fa), MReg::new(fb)),
                    2 => b.mxor(MReg::new(fd), MReg::new(fa), MReg::new(fb)),
                    _ => b.mnot(MReg::new(fd), MReg::new(fa)),
                };
            }
            Op::VLoad { vd, word } => {
                b.vload(VReg::new(vd), base, vload_off(word), None);
            }
            Op::VStore { vs, word } => {
                b.vstore(VReg::new(vs), base, vload_off(word), None);
            }
            Op::VGather { vd, vidx } => {
                b.vand(vidx_scratch, VReg::new(vidx), (WINDOW_WORDS - 1) as i64, None);
                b.vgather(VReg::new(vd), base, vidx_scratch, None);
            }
            Op::VScatter { vs, vidx } => {
                b.vand(vidx_scratch, VReg::new(vidx), (WINDOW_WORDS - 1) as i64, None);
                b.vscatter(VReg::new(vs), base, vidx_scratch, None);
            }
            Op::GatherLink { fd, vd, vidx, fsrc } => {
                b.vand(vidx_scratch, VReg::new(vidx), (WINDOW_WORDS - 1) as i64, None);
                b.vgatherlink(MReg::new(fd), VReg::new(vd), base, vidx_scratch, MReg::new(fsrc));
            }
            Op::ScatterCond { fd, vs, vidx, fsrc } => {
                b.vand(vidx_scratch, VReg::new(vidx), (WINDOW_WORDS - 1) as i64, None);
                b.vscattercond(MReg::new(fd), VReg::new(vs), base, vidx_scratch, MReg::new(fsrc));
            }
        }
    }
    b.halt();
    b.build().expect("straight-line program assembles")
}

fn initial_memory() -> Vec<u32> {
    (0..WINDOW_WORDS).map(|i| i.wrapping_mul(2654435761)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn machine_matches_functional_reference(
        ops in proptest::collection::vec(op_strategy(), 1..40),
        width in prop_oneof![Just(1usize), Just(4), Just(8), Just(16)],
    ) {
        let program = assemble(&ops, width);

        // Functional reference.
        let mut ref_mem = glsc::mem::Backing::new();
        ref_mem.write_u32_slice(WINDOW_BASE as u64, &initial_memory());
        let ref_arch = reference::run_functional(&program, &mut ref_mem, width, 1_000_000)
            .expect("straight-line program terminates");

        // Cycle-level machine (1 core, 1 thread).
        let mut machine = Machine::new(MachineConfig::paper(1, 1, width));
        machine
            .mem_mut()
            .backing_mut()
            .write_u32_slice(WINDOW_BASE as u64, &initial_memory());
        machine.load_program(program);
        machine.run().expect("machine run succeeds");

        // Compare the memory window.
        for w in 0..WINDOW_WORDS as u64 {
            let addr = WINDOW_BASE as u64 + 4 * w;
            prop_assert_eq!(
                machine.mem().backing().read_u32(addr),
                ref_mem.read_u32(addr),
                "memory diverged at word {}", w
            );
        }
        // Compare scalar registers, vector registers, and masks.
        let arch = machine.thread_arch(0);
        for i in 0..32u8 {
            prop_assert_eq!(arch.reg(Reg::new(i)), ref_arch.reg(Reg::new(i)), "r{} diverged", i);
        }
        for i in 0..16u8 {
            prop_assert_eq!(arch.vreg(VReg::new(i)), ref_arch.vreg(VReg::new(i)), "v{} diverged", i);
        }
        for i in 0..8u8 {
            prop_assert_eq!(arch.mreg(MReg::new(i)), ref_arch.mreg(MReg::new(i)), "f{} diverged", i);
        }
    }
}
