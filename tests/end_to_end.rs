//! Workspace-level integration tests: every benchmark, both variants,
//! through the public umbrella API, with validation.

use glsc::kernels::{build_named, run_workload, Dataset, Variant, KERNEL_NAMES};
use glsc::sim::MachineConfig;

#[test]
fn all_kernels_both_variants_validate_on_2x2() {
    let cfg = MachineConfig::paper(2, 2, 4);
    for kernel in KERNEL_NAMES {
        for variant in [Variant::Base, Variant::Glsc] {
            let w = build_named(kernel, Dataset::Tiny, variant, &cfg).expect("known kernel");
            let out = run_workload(&w, &cfg)
                .unwrap_or_else(|e| panic!("{kernel}/{}: {e}", variant.label()));
            assert!(out.report.cycles > 0, "{kernel} must do work");
        }
    }
}

#[test]
fn all_kernels_run_at_width_sixteen() {
    let cfg = MachineConfig::paper(1, 2, 16);
    for kernel in KERNEL_NAMES {
        let w = build_named(kernel, Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");
        run_workload(&w, &cfg).unwrap_or_else(|e| panic!("{kernel}: {e}"));
    }
}

#[test]
fn all_kernels_run_at_width_one() {
    let cfg = MachineConfig::paper(2, 1, 1);
    for kernel in KERNEL_NAMES {
        for variant in [Variant::Base, Variant::Glsc] {
            let w = build_named(kernel, Dataset::Tiny, variant, &cfg).expect("known kernel");
            run_workload(&w, &cfg).unwrap_or_else(|e| panic!("{kernel}: {e}"));
        }
    }
}

#[test]
fn simulation_is_deterministic() {
    let cfg = MachineConfig::paper(2, 2, 4);
    let cycles: Vec<u64> = (0..2)
        .map(|_| {
            let w = build_named("TMS", Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");
            run_workload(&w, &cfg).unwrap().report.cycles
        })
        .collect();
    assert_eq!(cycles[0], cycles[1], "same workload, same cycle count");
}

#[test]
fn glsc_and_base_agree_on_final_state_for_exact_kernels() {
    // HIP, GBC, TMS and micro have schedule-independent final answers;
    // run_workload already validates each against the same host
    // reference, so agreement is transitive. This test asserts the
    // reports differ in the expected *direction* instead: GLSC executes
    // fewer instructions at width 4.
    let cfg = MachineConfig::paper(1, 1, 4);
    for kernel in ["HIP", "TMS", "SMC", "FS", "GBC"] {
        let base = run_workload(
            &build_named(kernel, Dataset::Tiny, Variant::Base, &cfg).expect("known kernel"),
            &cfg,
        )
        .unwrap()
        .report;
        let glsc = run_workload(
            &build_named(kernel, Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel"),
            &cfg,
        )
        .unwrap()
        .report;
        assert!(
            glsc.total_instructions() < base.total_instructions(),
            "{kernel}: GLSC {} !< Base {}",
            glsc.total_instructions(),
            base.total_instructions()
        );
    }
}

#[test]
fn glsc_retry_loops_converge_with_tiny_reservation_buffer() {
    // §3.3's alternative GLSC implementation (fully-associative buffer)
    // end-to-end: a 1-entry buffer still lets adjacent ll/sc pairs make
    // progress under cross-core contention.
    use glsc::isa::{ProgramBuilder, Reg};
    use glsc::sim::Machine;
    let mut b = ProgramBuilder::new();
    let (base, i, tmp, ok) = (Reg::new(2), Reg::new(3), Reg::new(4), Reg::new(5));
    b.li(base, 0x1000);
    b.li(i, 0);
    let top = b.here();
    let retry = b.here();
    b.ll(tmp, base, 0);
    b.addi(tmp, tmp, 1);
    b.sc(ok, tmp, base, 0);
    b.beq(ok, 0, retry);
    b.addi(i, i, 1);
    b.blt(i, 20, top);
    b.halt();
    let _ = top;
    let mut cfg = MachineConfig::paper(2, 2, 1);
    cfg.mem.glsc_buffer_entries = Some(1);
    let mut machine = Machine::new(cfg);
    machine.load_program(b.build().unwrap());
    machine.run().unwrap();
    assert_eq!(machine.mem().backing().read_u32(0x1000), 4 * 20);
}

#[test]
fn kernels_validate_with_buffered_reservations() {
    // The whole benchmark suite still validates when GLSC entries live in
    // a small fully-associative buffer (capacity = SIMD-width x threads,
    // the paper's suggested sizing).
    let mut cfg = MachineConfig::paper(2, 2, 4);
    cfg.mem.glsc_buffer_entries = Some(4 * 2);
    for kernel in ["HIP", "TMS", "GBC"] {
        let w = build_named(kernel, Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");
        run_workload(&w, &cfg).unwrap_or_else(|e| panic!("{kernel}: {e}"));
    }
}

#[test]
fn umbrella_reexports_are_usable() {
    // Compile-time check that the umbrella exposes the full stack.
    let _cfg: glsc::mem::MemConfig = glsc::mem::MemConfig::default();
    let _glsc: glsc::core::GlscConfig = glsc::core::GlscConfig::default();
    let mut b = glsc::isa::ProgramBuilder::new();
    b.halt();
    let program = b.build().unwrap();
    let mut machine = glsc::sim::Machine::new(glsc::sim::MachineConfig::paper(1, 1, 1));
    machine.load_program(program);
    assert!(machine.run().is_ok());
}
