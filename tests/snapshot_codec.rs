//! Durable snapshot codec oracle on the real workloads: the on-disk
//! envelope (`MachineSnapshot::to_bytes`/`from_bytes`) must be a perfect
//! round trip for every kernel and every Fig. 6 machine shape — the
//! decoded snapshot re-encodes to the *same bytes*, and a machine
//! hydrated from the decoded bytes finishes bit-identically to an
//! uninterrupted run. Also drives the `SlicedRun` checkpoint loop the
//! crash-durable service uses (encode/decode at every pause) and pins the
//! typed rejection of version skew and checksum damage.

use glsc::kernels::{build_named, Dataset, Variant, Workload, KERNEL_NAMES};
use glsc::sim::{
    ChaosConfig, FaultPlan, Machine, MachineConfig, MachineSnapshot, NocConfig, SlicedRun,
    SnapshotCodecError, SNAPSHOT_FORMAT_VERSION,
};

const SHAPES: [(usize, usize); 4] = [(1, 1), (1, 4), (4, 1), (4, 4)];

fn machine_for(w: &Workload, cfg: &MachineConfig, chaos: Option<u64>) -> Machine {
    let mut m = Machine::new(cfg.clone());
    if let Some(seed) = chaos {
        m.mem_mut()
            .install_fault_plan(FaultPlan::new(ChaosConfig::from_seed(seed)));
    }
    w.image.apply(m.mem_mut().backing_mut());
    m.load_program(w.program.clone());
    m
}

/// Runs to completion uninterrupted, then re-runs with an interrupt at
/// half the cycle count, pushes the snapshot through the byte codec, and
/// finishes on a machine hydrated from the *decoded* bytes. Asserts the
/// envelope round trip is bit-identical and the final report matches.
fn assert_codec_resumable(kernel: &str, w: &Workload, cfg: &MachineConfig, chaos: Option<u64>) {
    let run = |m: &mut Machine| m.run().unwrap_or_else(|e| panic!("{kernel}: {e}"));
    let mut baseline_m = machine_for(w, cfg, chaos);
    let baseline = run(&mut baseline_m);

    let mut interrupted = machine_for(w, cfg, chaos);
    for _ in 0..baseline.cycles / 2 {
        if interrupted.step() {
            panic!("{kernel}: halted before the snapshot point");
        }
    }
    let bytes = interrupted.snapshot().to_bytes();
    let decoded = MachineSnapshot::from_bytes(&bytes)
        .unwrap_or_else(|e| panic!("{kernel}: decode failed: {e}"));
    assert_eq!(
        decoded.to_bytes(),
        bytes,
        "{kernel} {}x{} chaos={chaos:?}: envelope round trip not bit-identical",
        cfg.cores,
        cfg.threads_per_core
    );

    let mut resumed_m = Machine::from_snapshot(&decoded);
    let resumed = run(&mut resumed_m);
    assert_eq!(
        resumed, baseline,
        "{kernel} {}x{} chaos={chaos:?}: run resumed from decoded bytes diverged",
        cfg.cores, cfg.threads_per_core
    );
    (w.validate)(resumed_m.mem().backing())
        .unwrap_or_else(|e| panic!("{kernel}: decoded-resume run failed validation: {e}"));
}

#[test]
fn codec_round_trips_every_kernel_and_shape() {
    for kernel in KERNEL_NAMES {
        for (cores, tpc) in SHAPES {
            let cfg = MachineConfig::paper(cores, tpc, 4);
            let w = build_named(kernel, Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");
            assert_codec_resumable(kernel, &w, &cfg, None);
        }
    }
}

#[test]
fn codec_round_trips_base_variant() {
    // The Base variant exercises ll/sc retry loops instead of the GLSC
    // unit; its LSU/reservation state must survive the codec too.
    for kernel in ["HIP", "GBC", "FS"] {
        let cfg = MachineConfig::paper(4, 4, 4);
        let w = build_named(kernel, Dataset::Tiny, Variant::Base, &cfg).expect("known kernel");
        assert_codec_resumable(kernel, &w, &cfg, None);
    }
}

#[test]
fn codec_round_trips_on_ring_with_active_fault_plan() {
    // A contended ring fabric plus an active fault plan puts in-flight
    // NoC reservations, chaos counters and live RNG state into the
    // snapshot — the hardest bytes to get bit-identical.
    for kernel in KERNEL_NAMES {
        let cfg = MachineConfig::paper(4, 4, 4)
            .with_noc(NocConfig::ring())
            .with_max_cycles(2_000_000_000)
            .with_watchdog_window(Some(5_000_000));
        let w = build_named(kernel, Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");
        assert_codec_resumable(kernel, &w, &cfg, Some(0x0C5EED));
    }
}

#[test]
fn sliced_checkpoint_loop_matches_solo_run() {
    // The service's supervision loop in miniature: advance in fixed
    // cycle budgets via `run_for`, and at every pause round-trip the
    // machine through the byte codec — exactly what a checkpoint-every-N
    // cadence does. The final report must match an uninterrupted run.
    for kernel in ["HIP", "TMS", "GBC"] {
        let cfg = MachineConfig::paper(2, 2, 4);
        let w = build_named(kernel, Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");

        let mut solo = machine_for(&w, &cfg, None);
        let baseline = solo.run().unwrap_or_else(|e| panic!("{kernel}: {e}"));

        let mut m = machine_for(&w, &cfg, None);
        let mut run = SlicedRun::new(&m);
        let mut checkpoints = 0u32;
        let report = loop {
            match m
                .run_for(&mut run, 500)
                .unwrap_or_else(|e| panic!("{kernel}: {e}"))
            {
                Some(report) => break report,
                None => {
                    let bytes = m.snapshot().to_bytes();
                    let decoded = MachineSnapshot::from_bytes(&bytes)
                        .unwrap_or_else(|e| panic!("{kernel}: checkpoint decode failed: {e}"));
                    m = Machine::from_snapshot(&decoded);
                    run = SlicedRun::new(&m);
                    checkpoints += 1;
                }
            }
        };
        assert!(checkpoints > 2, "{kernel}: budget too large, loop vacuous");
        assert_eq!(
            report, baseline,
            "{kernel}: checkpoint-loop run diverged from solo run"
        );
        (w.validate)(m.mem().backing())
            .unwrap_or_else(|e| panic!("{kernel}: checkpoint-loop run failed validation: {e}"));
    }
}

#[test]
fn version_skew_and_damage_are_typed_errors() {
    let cfg = MachineConfig::paper(1, 4, 4);
    let w = build_named("HIP", Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");
    let mut m = machine_for(&w, &cfg, None);
    for _ in 0..200 {
        assert!(!m.step(), "HIP halted suspiciously early");
    }
    let bytes = m.snapshot().to_bytes();

    // A future format version is refused with the version it found, so
    // recovery can log it and fall back to a fresh run.
    let mut skew = bytes.clone();
    let next = (SNAPSHOT_FORMAT_VERSION + 1).to_le_bytes();
    skew[8..12].copy_from_slice(&next);
    match MachineSnapshot::from_bytes(&skew) {
        Err(SnapshotCodecError::VersionMismatch { found }) => {
            assert_eq!(found, SNAPSHOT_FORMAT_VERSION + 1);
        }
        other => panic!("version skew decoded as {other:?}"),
    }

    // Flip one bit in the middle of the payload: checksum mismatch.
    let mut flip = bytes.clone();
    let mid = bytes.len() / 2;
    flip[mid] ^= 0x01;
    assert!(
        matches!(
            MachineSnapshot::from_bytes(&flip),
            Err(SnapshotCodecError::ChecksumMismatch { .. })
        ),
        "bit flip at byte {mid} was not caught"
    );

    // Every truncation point is a typed rejection, never a partial state.
    for frac in [4u64, 2, 1] {
        let cut = (bytes.len() as u64 * (frac.min(3)) / (frac + 1)) as usize;
        let err = MachineSnapshot::from_bytes(&bytes[..cut.min(bytes.len() - 1)])
            .expect_err("truncated snapshot decoded");
        assert!(
            matches!(
                err,
                SnapshotCodecError::Truncated | SnapshotCodecError::ChecksumMismatch { .. }
            ),
            "cut {cut}: unexpected error {err:?}"
        );
    }
}

#[test]
fn adversarial_length_prefixes_are_typed_rejections() {
    // A hostile (or torn) envelope can claim any payload length it
    // likes; none of them may drive an allocation or a panic — the
    // declared length is checked against the bytes actually present
    // before anything else trusts it.
    let cfg = MachineConfig::paper(1, 2, 4);
    let w = build_named("HIP", Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");
    let mut m = machine_for(&w, &cfg, None);
    for _ in 0..200 {
        assert!(!m.step(), "HIP halted suspiciously early");
    }
    let bytes = m.snapshot().to_bytes();

    // Hostile declared lengths in the header (bytes 12..20). u64::MAX
    // and MAX-19 overflow the checked framing arithmetic; 1<<60 is a
    // "plausible" huge claim; the exact buffer length double-counts the
    // header+trailer. All must be Truncated, instantly.
    for declared in [u64::MAX, u64::MAX - 19, 1u64 << 60, bytes.len() as u64] {
        let mut evil = bytes.clone();
        evil[12..20].copy_from_slice(&declared.to_le_bytes());
        match MachineSnapshot::from_bytes(&evil) {
            Err(SnapshotCodecError::Truncated) => {}
            other => panic!("declared length {declared:#x} decoded as {other:?}"),
        }
    }

    // A zero length leaves the real payload dangling past the claimed
    // end: typed as trailing garbage, not silently ignored.
    let mut zero = bytes.clone();
    zero[12..20].copy_from_slice(&0u64.to_le_bytes());
    match MachineSnapshot::from_bytes(&zero) {
        Err(SnapshotCodecError::TrailingBytes { extra }) => {
            assert_eq!(extra, bytes.len() - 28, "unexpected trailing-byte count");
        }
        other => panic!("zero length decoded as {other:?}"),
    }

    // The nastiest case: the envelope is *valid* (length and checksum
    // both check out) but the payload inside is hostile — 0xFF floods
    // every inner length prefix with absurd values. The wire reader
    // must bound each inner length by the input remaining, so this is
    // a typed Malformed, not an OOM.
    let mut inner = bytes.clone();
    let n = inner.len();
    for b in &mut inner[20..n - 8] {
        *b = 0xFF;
    }
    let checksum = glsc_wire::fnv64(&inner[..n - 8]);
    inner[n - 8..].copy_from_slice(&checksum.to_le_bytes());
    match MachineSnapshot::from_bytes(&inner) {
        Err(SnapshotCodecError::Malformed(_)) => {}
        other => panic!("hostile payload behind a valid checksum decoded as {other:?}"),
    }
}
