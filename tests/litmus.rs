//! Memory-consistency acceptance suite (DESIGN.md §17): the litmus
//! per-model expected-outcome table, the vector-clock atomicity oracle
//! over every kernel and pattern workload under every memory model with
//! chaos active, and deterministic replay of both schedule witnesses and
//! injected violations.
//!
//! The schedule-exploring harness itself lives in `glsc_sim::litmus`
//! (with its own unit tests); this suite runs it at acceptance scale and
//! pins the cross-crate contracts: a relaxed outcome appears exactly
//! under the models that allow it, every witness replays to the same
//! outcome, and the oracle never fires on real GLSC traffic.

use glsc::kernels::{build_named, Dataset, Variant, KERNEL_NAMES};
use glsc::mem::{AtomicityOracle, ChaosConfig, FaultPlan, MemoryOrder};
use glsc::sim::litmus::{replay_witness, suite, ExploreBudget};
use glsc::sim::{Machine, MachineConfig, SimError};

/// Budget policy: models that must *exhibit* the relaxed outcome get the
/// full default budget (the search has to find a witness); models that
/// must *forbid* it get the smoke budget (absence is checked against the
/// same enumerator the harness's unit tests validate in depth).
fn budget_for(required: bool) -> ExploreBudget {
    if required {
        ExploreBudget::default()
    } else {
        ExploreBudget::smoke()
    }
}

#[test]
fn per_model_expected_outcome_table() {
    let mut table = Vec::new();
    for test in suite() {
        for &order in MemoryOrder::ALL.iter() {
            let report = test.explore(order, &budget_for(test.allows(order)));
            table.push((
                test.name,
                order,
                report.relaxed_observed,
                report.expected_relaxed,
            ));
            assert!(
                report.pass(),
                "{} under {order}: relaxed outcome observed={} expected={}",
                test.name,
                report.relaxed_observed,
                report.expected_relaxed,
            );
        }
    }
    // The headline rows of the acceptance table, pinned explicitly so a
    // suite() regression (e.g. an SB test that stops being SB) cannot
    // silently weaken the assertion above.
    let row = |name: &str, order: MemoryOrder| {
        table
            .iter()
            .find(|(n, o, _, _)| *n == name && *o == order)
            .copied()
            .unwrap_or_else(|| panic!("{name} under {order} missing from the table"))
    };
    assert!(!row("SB", MemoryOrder::Sc).2, "SC must forbid SB");
    assert!(row("SB", MemoryOrder::Tso).2, "TSO must exhibit SB");
    assert!(
        row("SB", MemoryOrder::RelaxedFence).2,
        "RelaxedFence must exhibit SB"
    );
    assert!(
        row("MP", MemoryOrder::RelaxedFence).2,
        "RelaxedFence must exhibit MP"
    );
    assert!(!row("MP", MemoryOrder::Tso).2, "TSO must forbid MP");
    for name in ["SB+fence", "MP+fence.rel", "LB", "CoRR", "IRIW"] {
        for &order in MemoryOrder::ALL.iter() {
            assert!(!row(name, order).2, "{name} must be forbidden");
        }
    }
}

#[test]
fn exhaustive_enumeration_drill_on_sb() {
    // The bounded DFS enumerates every outcome of the store-buffering
    // shape: under SC exactly the three interleaving-explainable results
    // appear; under TSO the enumeration also reaches the relaxed [0, 0].
    let sb = suite().into_iter().find(|t| t.name == "SB").unwrap();
    let budget = ExploreBudget {
        walks: 0, // pure enumeration — no random walks
        ..ExploreBudget::default()
    };
    let sc = sb.explore(MemoryOrder::Sc, &budget);
    assert!(
        !sc.outcomes.contains_key(&vec![0, 0]),
        "SC enumeration reached the forbidden SB outcome: {:?}",
        sc.outcomes.keys().collect::<Vec<_>>()
    );
    for allowed in [vec![0u64, 1], vec![1, 0], vec![1, 1]] {
        assert!(
            sc.outcomes.contains_key(&allowed),
            "SC enumeration missed SC-allowed outcome {allowed:?}"
        );
    }
    let tso = sb.explore(MemoryOrder::Tso, &budget);
    assert!(
        tso.outcomes.contains_key(&vec![0, 0]),
        "TSO enumeration never reached the relaxed SB outcome: {:?}",
        tso.outcomes.keys().collect::<Vec<_>>()
    );
}

#[test]
fn every_witness_replays_deterministically() {
    for test in suite() {
        for &order in MemoryOrder::ALL.iter() {
            if !test.allows(order) {
                continue;
            }
            let report = test.explore(order, &ExploreBudget::default());
            let witness = report
                .relaxed_witness()
                .unwrap_or_else(|| panic!("{} under {order}: no relaxed witness", test.name));
            // The witness round-trips through its wire form and replays
            // to the identical outcome, three times over.
            let bytes = glsc_wire::to_bytes(witness);
            let decoded = glsc_wire::from_bytes(&bytes).unwrap();
            assert_eq!(&decoded, witness);
            let first = replay_witness(&decoded).expect("witness must complete");
            assert_eq!(
                first, test.relaxed,
                "{} under {order}: witness replayed to a different outcome",
                test.name
            );
            for _ in 0..2 {
                assert_eq!(replay_witness(&decoded).as_ref(), Some(&first));
            }
        }
    }
}

/// Workloads for the oracle sweep: the seven RMS kernels plus pattern
/// specs covering the contended (conflict) and streaming (stride) ends
/// of the access-pattern engine.
fn sweep_names() -> Vec<String> {
    let mut names: Vec<String> = KERNEL_NAMES.iter().map(|k| k.to_string()).collect();
    names.push("pattern:conflict:p=0.5x64*40".to_string());
    names.push("pattern:stride:4x256".to_string());
    names
}

fn sweep_cfg(order: MemoryOrder) -> MachineConfig {
    MachineConfig::paper(2, 2, 4)
        .with_memory_order(order)
        .with_max_cycles(2_000_000_000)
        .with_watchdog_window(Some(5_000_000))
}

#[test]
fn oracle_reports_zero_violations_for_all_workloads_under_every_model_with_chaos() {
    for name in sweep_names() {
        for &order in MemoryOrder::ALL.iter() {
            let cfg = sweep_cfg(order);
            let w = build_named(&name, Dataset::Tiny, Variant::Glsc, &cfg)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let mut machine = Machine::new(cfg);
            let gids = machine.cfg().total_threads();
            machine.mem_mut().install_oracle(AtomicityOracle::new(gids));
            machine
                .mem_mut()
                .install_fault_plan(FaultPlan::new(ChaosConfig::aggressive(0x5EED)));
            w.image.apply(machine.mem_mut().backing_mut());
            machine.load_program(w.program.clone());
            // run() errors the cycle a violation commits, so Ok already
            // proves the oracle stayed silent; validation then proves
            // the run computed the right answer under this model.
            machine
                .run()
                .unwrap_or_else(|e| panic!("{name} under {order} with chaos: {e}"));
            (w.validate)(machine.mem().backing())
                .unwrap_or_else(|e| panic!("{name} under {order} with chaos: validation: {e}"));
            let stats = machine.mem().oracle().expect("oracle installed").stats();
            assert_eq!(
                stats.violations, 0,
                "{name} under {order}: oracle recorded violations"
            );
            assert!(
                machine.mem().chaos_stats().unwrap().total_destructive() > 0,
                "{name} under {order}: the chaos plan never perturbed the run"
            );
        }
    }
}

#[test]
fn injected_violation_is_typed_and_reproduces_deterministically() {
    // Falsifiability: arm the injection knob so the oracle fabricates a
    // foreign write inside an atomic region, and pin that (a) the run
    // fails with the typed SimError, (b) re-running the identical
    // configuration reproduces the identical violation at the identical
    // cycle — the deterministic-replay contract for real violations.
    let run_injected = || {
        let cfg = sweep_cfg(MemoryOrder::Sc);
        let w = build_named("HIP", Dataset::Tiny, Variant::Glsc, &cfg).unwrap();
        let mut machine = Machine::new(cfg);
        let gids = machine.cfg().total_threads();
        machine
            .mem_mut()
            .install_oracle(AtomicityOracle::new(gids).inject_foreign_write_after_links(3));
        w.image.apply(machine.mem_mut().backing_mut());
        machine.load_program(w.program.clone());
        match machine.run() {
            Err(SimError::AtomicityViolation { cycle, violation }) => (cycle, violation),
            other => panic!("expected an atomicity violation, got {other:?}"),
        }
    };
    let (cycle_a, violation_a) = run_injected();
    assert!(violation_a.injected, "the violation must carry its origin");
    for _ in 0..2 {
        let (cycle_b, violation_b) = run_injected();
        assert_eq!(cycle_a, cycle_b, "violation cycle drifted across runs");
        assert_eq!(violation_a, violation_b, "violation detail drifted");
    }
}
