//! Differential guard for the interconnect work: the default
//! [`Topology::Ideal`] fabric must be **bit-identical** in timing to the
//! pre-NoC simulator, and the non-ideal fabrics must show real,
//! deterministic contention.
//!
//! The golden numbers below were captured from the simulator *before* the
//! NoC subsystem was wired in (`examples/golden_dump.rs` regenerates the
//! table — any intentional timing change must re-run it and explain the
//! diff). They cover every kernel × Fig. 6 machine shape × variant on the
//! Tiny dataset, all four microbenchmark scenarios, and the SIMD-width
//! extremes.

use glsc::kernels::{build_named, micro, run_workload, Dataset, Variant, KERNEL_NAMES};
use glsc::sim::{MachineConfig, NocConfig};

/// (kernel, cores, threads/core, variant, cycles, l1 accesses) captured
/// pre-NoC at SIMD width 4 on `Dataset::Tiny`.
#[rustfmt::skip]
const GOLDEN: &[(&str, usize, usize, Variant, u64, u64)] = &[
    ("GBC", 1, 1, Variant::Base, 29997, 3584),
    ("GBC", 1, 1, Variant::Glsc, 39288, 2813),
    ("GBC", 1, 4, Variant::Base, 9272, 3743),
    ("GBC", 1, 4, Variant::Glsc, 11649, 2995),
    ("GBC", 4, 1, Variant::Base, 13239, 3819),
    ("GBC", 4, 1, Variant::Glsc, 15747, 3127),
    ("GBC", 4, 4, Variant::Base, 4877, 4845),
    ("GBC", 4, 4, Variant::Glsc, 6757, 4363),
    ("FS", 1, 1, Variant::Base, 34613, 1020),
    ("FS", 1, 1, Variant::Glsc, 33378, 780),
    ("FS", 1, 4, Variant::Base, 9535, 1084),
    ("FS", 1, 4, Variant::Glsc, 9105, 788),
    ("FS", 4, 1, Variant::Base, 9956, 1088),
    ("FS", 4, 1, Variant::Glsc, 9197, 790),
    ("FS", 4, 4, Variant::Base, 4562, 1120),
    ("FS", 4, 4, Variant::Glsc, 4164, 804),
    ("GPS", 1, 1, Variant::Base, 97776, 12288),
    ("GPS", 1, 1, Variant::Glsc, 67419, 10752),
    ("GPS", 1, 4, Variant::Base, 27382, 12288),
    ("GPS", 1, 4, Variant::Glsc, 18558, 10807),
    ("GPS", 4, 1, Variant::Base, 24859, 12293),
    ("GPS", 4, 1, Variant::Glsc, 18286, 10767),
    ("GPS", 4, 4, Variant::Base, 7915, 12399),
    ("GPS", 4, 4, Variant::Glsc, 7666, 8053),
    ("HIP", 1, 1, Variant::Base, 31449, 2312),
    ("HIP", 1, 1, Variant::Glsc, 32402, 1188),
    ("HIP", 1, 4, Variant::Base, 9400, 2324),
    ("HIP", 1, 4, Variant::Glsc, 8766, 1200),
    ("HIP", 4, 1, Variant::Base, 8394, 2324),
    ("HIP", 4, 1, Variant::Glsc, 8711, 1200),
    ("HIP", 4, 4, Variant::Base, 3071, 2576),
    ("HIP", 4, 4, Variant::Glsc, 3078, 1452),
    ("SMC", 1, 1, Variant::Base, 139445, 8960),
    ("SMC", 1, 1, Variant::Glsc, 95196, 8960),
    ("SMC", 1, 4, Variant::Base, 38262, 9140),
    ("SMC", 1, 4, Variant::Glsc, 26198, 7584),
    ("SMC", 4, 1, Variant::Base, 52300, 9258),
    ("SMC", 4, 1, Variant::Glsc, 34331, 7858),
    ("SMC", 4, 4, Variant::Base, 15523, 12792),
    ("SMC", 4, 4, Variant::Glsc, 10675, 5708),
    ("MFP", 1, 1, Variant::Base, 106078, 15360),
    ("MFP", 1, 1, Variant::Glsc, 90911, 11520),
    ("MFP", 1, 4, Variant::Base, 31113, 15362),
    ("MFP", 1, 4, Variant::Glsc, 23480, 11548),
    ("MFP", 4, 1, Variant::Base, 27672, 15364),
    ("MFP", 4, 1, Variant::Glsc, 23994, 11560),
    ("MFP", 4, 4, Variant::Base, 8855, 15504),
    ("MFP", 4, 4, Variant::Glsc, 9595, 9350),
    ("TMS", 1, 1, Variant::Base, 43053, 1539),
    ("TMS", 1, 1, Variant::Glsc, 37149, 1251),
    ("TMS", 1, 4, Variant::Base, 11819, 1723),
    ("TMS", 1, 4, Variant::Glsc, 10246, 1465),
    ("TMS", 4, 1, Variant::Base, 15885, 1841),
    ("TMS", 4, 1, Variant::Glsc, 12168, 1589),
    ("TMS", 4, 4, Variant::Base, 5853, 3117),
    ("TMS", 4, 4, Variant::Glsc, 5445, 4083),
];

/// (scenario index into `micro::Scenario::ALL`, variant, cycles,
/// l1 accesses) captured pre-NoC at 4×4, width 4.
const MICRO_GOLDEN: &[(usize, Variant, u64, u64)] = &[
    (0, Variant::Base, 11996, 6854),
    (0, Variant::Glsc, 9017, 8484),
    (1, Variant::Base, 8112, 5760),
    (1, Variant::Glsc, 6781, 1920),
    (2, Variant::Base, 8243, 5760),
    (2, Variant::Glsc, 5732, 5760),
    (3, Variant::Base, 8115, 5760),
    (3, Variant::Glsc, 9482, 5760),
];

/// (simd width, variant, cycles, l1 accesses) for HIP at 4×4 pre-NoC.
const WIDTH_GOLDEN: &[(usize, Variant, u64, u64)] = &[
    (1, Variant::Base, 3770, 3344),
    (1, Variant::Glsc, 4046, 3344),
    (16, Variant::Base, 2889, 2384),
    (16, Variant::Glsc, 3688, 1038),
];

#[test]
fn ideal_topology_matches_pre_noc_goldens_on_every_kernel() {
    assert_eq!(
        GOLDEN.len(),
        KERNEL_NAMES.len() * 4 * 2,
        "golden table must cover every kernel x shape x variant"
    );
    for &(kernel, c, t, v, cycles, l1) in GOLDEN {
        let cfg = MachineConfig::paper(c, t, 4);
        assert_eq!(
            cfg.mem.noc,
            NocConfig::ideal(),
            "ideal must stay the default"
        );
        let w = build_named(kernel, Dataset::Tiny, v, &cfg).expect("known kernel");
        let out = run_workload(&w, &cfg).unwrap();
        assert_eq!(
            (out.report.cycles, out.report.l1_accesses()),
            (cycles, l1),
            "{kernel} {c}x{t} {v:?}: ideal-NoC timing diverged from pre-NoC golden"
        );
    }
}

#[test]
fn ideal_topology_matches_pre_noc_goldens_on_micro_and_widths() {
    for &(s, v, cycles, l1) in MICRO_GOLDEN {
        let scenario = micro::Scenario::ALL[s];
        let cfg = MachineConfig::paper(4, 4, 4);
        let w = micro::Micro::new(scenario, Dataset::Tiny).build(v, &cfg);
        let out = run_workload(&w, &cfg).unwrap();
        assert_eq!(
            (out.report.cycles, out.report.l1_accesses()),
            (cycles, l1),
            "micro {} {v:?}: ideal-NoC timing diverged",
            scenario.label()
        );
    }
    for &(width, v, cycles, l1) in WIDTH_GOLDEN {
        let cfg = MachineConfig::paper(4, 4, width);
        let w = build_named("HIP", Dataset::Tiny, v, &cfg).expect("known kernel");
        let out = run_workload(&w, &cfg).unwrap();
        assert_eq!(
            (out.report.cycles, out.report.l1_accesses()),
            (cycles, l1),
            "HIP w{width} {v:?}: ideal-NoC timing diverged"
        );
    }
}

/// The acceptance bar for the non-ideal fabrics: at 16 hardware threads
/// the ring must show real contention (slower than ideal, nonzero link
/// queueing) and be exactly reproducible run-to-run.
#[test]
fn ring_contention_at_16_threads_is_measurable_and_deterministic() {
    let ideal_cfg = MachineConfig::paper(4, 4, 4);
    let ring_cfg = MachineConfig::paper(4, 4, 4).with_noc(NocConfig::ring());
    for kernel in ["HIP", "TMS", "GBC"] {
        for v in [Variant::Base, Variant::Glsc] {
            let wi = build_named(kernel, Dataset::Tiny, v, &ideal_cfg).expect("known kernel");
            let ideal = run_workload(&wi, &ideal_cfg).unwrap().report;
            let wr = build_named(kernel, Dataset::Tiny, v, &ring_cfg).expect("known kernel");
            let ring = run_workload(&wr, &ring_cfg).unwrap().report;
            assert!(
                ring.cycles > ideal.cycles,
                "{kernel} {v:?}: ring ({}) not slower than ideal ({})",
                ring.cycles,
                ideal.cycles
            );
            assert!(
                ring.mem.noc.queue_cycles > 0,
                "{kernel} {v:?}: ring shows no link queueing"
            );
            assert!(ring.mem.noc.hops > ring.mem.noc.total_msgs());
            // Determinism: a second run is bit-identical, counters included.
            let again = run_workload(&wr, &ring_cfg).unwrap().report;
            assert_eq!(again, ring, "{kernel} {v:?}: ring run not deterministic");
        }
    }
}

/// The same differential bar applies to the arbitration subsystem: the
/// default policy must be `Free`, and selecting `Free` *explicitly* must
/// be bit-identical — full report, counters included — to the default
/// config the golden tables above already pin to the pre-NoC simulator.
#[test]
fn explicit_free_arbitration_is_bit_identical_to_default() {
    use glsc::sim::ArbitrationPolicy;
    let default_cfg = MachineConfig::paper(4, 4, 4);
    assert_eq!(
        default_cfg.mem.arbitration,
        ArbitrationPolicy::Free,
        "Free must stay the default policy"
    );
    let free_cfg = MachineConfig::paper(4, 4, 4).with_arbitration(ArbitrationPolicy::Free);
    for kernel in ["HIP", "GPS", "TMS"] {
        for v in [Variant::Base, Variant::Glsc] {
            let wd = build_named(kernel, Dataset::Tiny, v, &default_cfg).expect("known kernel");
            let base = run_workload(&wd, &default_cfg).unwrap().report;
            let wf = build_named(kernel, Dataset::Tiny, v, &free_cfg).expect("known kernel");
            let free = run_workload(&wf, &free_cfg).unwrap().report;
            assert_eq!(base, free, "{kernel} {v:?}: explicit Free diverged");
        }
    }
}

/// Crossbar sits between ideal and ring: it pays port contention but no
/// multi-hop latency, and its counters are deterministic too.
#[test]
fn crossbar_is_contended_but_cheaper_than_the_ring() {
    let ring_cfg = MachineConfig::paper(4, 4, 4).with_noc(NocConfig::ring());
    let xbar_cfg = MachineConfig::paper(4, 4, 4).with_noc(NocConfig::crossbar());
    let wr = build_named("HIP", Dataset::Tiny, Variant::Glsc, &ring_cfg).expect("known kernel");
    let ring = run_workload(&wr, &ring_cfg).unwrap().report;
    let wx = build_named("HIP", Dataset::Tiny, Variant::Glsc, &xbar_cfg).expect("known kernel");
    let xbar = run_workload(&wx, &xbar_cfg).unwrap().report;
    assert!(xbar.cycles <= ring.cycles);
    assert_eq!(xbar.mem.noc.hops, xbar.mem.noc.total_msgs());
}
