//! Qualitative reproduction checks of the paper's headline claims, run on
//! small inputs so they are fast enough for CI.

use glsc::kernels::micro::{Micro, Scenario};
use glsc::kernels::{build_named, run_workload, Dataset, Variant};
use glsc::sim::MachineConfig;

fn cycles(kernel: &str, variant: Variant, cores: usize, tpc: usize, width: usize) -> u64 {
    let cfg = MachineConfig::paper(cores, tpc, width);
    let w = build_named(kernel, Dataset::Tiny, variant, &cfg).expect("known kernel");
    run_workload(&w, &cfg).unwrap().report.cycles
}

fn micro_cycles(s: Scenario, variant: Variant, width: usize) -> u64 {
    let cfg = MachineConfig::paper(4, 4, width);
    let w = Micro::new(s, Dataset::Tiny).build(variant, &cfg);
    run_workload(&w, &cfg).unwrap().report.cycles
}

#[test]
fn glsc_beats_base_at_width_four_on_reduction_kernels() {
    // §5.1: "In most cases, GLSC delivers a significant improvement."
    // (GBC and HIP are near-parity in our cost model due to their high
    // alias rates — the phenomenon the paper itself reports for HIP.)
    for kernel in ["TMS", "SMC", "FS", "GPS"] {
        let base = cycles(kernel, Variant::Base, 1, 1, 4);
        let glsc = cycles(kernel, Variant::Glsc, 1, 1, 4);
        assert!(
            glsc < base,
            "{kernel} at w4: GLSC {glsc} must beat Base {base}"
        );
    }
}

#[test]
fn width_one_has_no_large_glsc_penalty() {
    // §5.3: "On average, GLSC has the same performance as Base" at 1-wide.
    for kernel in ["TMS", "SMC", "HIP"] {
        let base = cycles(kernel, Variant::Base, 1, 1, 1) as f64;
        let glsc = cycles(kernel, Variant::Glsc, 1, 1, 1) as f64;
        assert!(
            glsc < base * 1.6,
            "{kernel} at w1: GLSC {glsc} should be within ~1.6x of Base {base}"
        );
    }
}

#[test]
fn glsc_benefit_grows_with_simd_width() {
    // §5.3 / Fig. 8: the Base/GLSC ratio grows from w1 to w16 for
    // SIMD-efficient kernels.
    {
        let kernel = "TMS";
        let r1 = cycles(kernel, Variant::Base, 1, 2, 1) as f64
            / cycles(kernel, Variant::Glsc, 1, 2, 1) as f64;
        let r16 = cycles(kernel, Variant::Base, 1, 2, 16) as f64
            / cycles(kernel, Variant::Glsc, 1, 2, 16) as f64;
        assert!(
            r16 > r1,
            "{kernel}: ratio must grow with width (w1 {r1:.2} vs w16 {r16:.2})"
        );
    }
}

#[test]
fn microbenchmark_scenario_ordering() {
    // Fig. 7: GLSC wins in A/B/C; scenario D (full aliasing) is its worst
    // case and must show the smallest ratio.
    let ratios: Vec<f64> = Scenario::ALL
        .iter()
        .map(|&s| {
            micro_cycles(s, Variant::Base, 4) as f64 / micro_cycles(s, Variant::Glsc, 4) as f64
        })
        .collect();
    let (a, b, c, d) = (ratios[0], ratios[1], ratios[2], ratios[3]);
    assert!(b > 1.0, "scenario B must favor GLSC, got {b:.2}");
    assert!(c > 1.0, "scenario C must favor GLSC, got {c:.2}");
    assert!(a > 1.0, "scenario A must favor GLSC, got {a:.2}");
    assert!(
        d < a && d < b && d < c,
        "D is GLSC's worst case: {ratios:?}"
    );
}

#[test]
fn sync_fraction_is_significant_for_glsc_kernels() {
    // Fig. 5(a): all benchmarks spend a significant fraction of time in
    // synchronization at 1x1 with 1-wide SIMD.
    let cfg = MachineConfig::paper(1, 1, 1);
    for kernel in ["TMS", "GBC", "MFP"] {
        let w = build_named(kernel, Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");
        let rep = run_workload(&w, &cfg).unwrap().report;
        let frac = rep.sync_fraction();
        assert!(
            frac > 0.05,
            "{kernel}: sync fraction {frac:.3} should be significant"
        );
    }
}

#[test]
fn combining_reduces_atomic_l1_accesses() {
    // Table 4 "L1 Accesses": the GSU sends one request per distinct line.
    let cfg = MachineConfig::paper(1, 1, 4);
    let w = build_named("FS", Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");
    let rep = run_workload(&w, &cfg).unwrap().report;
    assert!(
        rep.atomic_l1_accesses() < rep.atomic_l1_accesses_uncombined(),
        "combining must reduce atomic L1 accesses"
    );
}

#[test]
fn failure_rates_follow_table_4_pattern() {
    // At 1x1 failures come only from aliasing; GBC (clustered cells) has
    // a substantial rate, TMS (uniform columns) nearly none.
    let cfg = MachineConfig::paper(1, 1, 4);
    let gbc = run_workload(
        &build_named("GBC", Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel"),
        &cfg,
    )
    .unwrap()
    .report;
    let tms = run_workload(
        &build_named("TMS", Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel"),
        &cfg,
    )
    .unwrap()
    .report;
    assert!(gbc.gsu.sc_fail_alias > 0, "GBC must alias");
    assert!(
        tms.glsc_failure_rate() < gbc.glsc_failure_rate(),
        "TMS failure rate must be below GBC's"
    );
    assert_eq!(
        tms.gsu.sc_fail_reservation, 0,
        "no cross-thread conflicts at 1x1"
    );
}
