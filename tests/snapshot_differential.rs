//! Snapshot/restore differential oracle on the real workloads: for every
//! kernel and every Fig. 6 machine shape, running to completion in one
//! shot must be bit-identical — same `RunReport`, same validated final
//! memory — to stepping halfway, snapshotting, hydrating a fresh machine
//! from the snapshot, and finishing there. Also covers the naive
//! (single-stepped) loop and resumption with an active fault plan, whose
//! RNG state rides in the snapshot.

use glsc::kernels::{build_named, Dataset, Variant, Workload, KERNEL_NAMES};
use glsc::sim::{ChaosConfig, FaultPlan, Machine, MachineConfig, NocConfig, RunReport};

const SHAPES: [(usize, usize); 4] = [(1, 1), (1, 4), (4, 1), (4, 4)];

fn machine_for(w: &Workload, cfg: &MachineConfig, chaos: Option<u64>) -> Machine {
    let mut m = Machine::new(cfg.clone());
    if let Some(seed) = chaos {
        m.mem_mut()
            .install_fault_plan(FaultPlan::new(ChaosConfig::from_seed(seed)));
    }
    w.image.apply(m.mem_mut().backing_mut());
    m.load_program(w.program.clone());
    m
}

/// One-shot baseline, then interrupt-at-half + resume; asserts report
/// equality and runs the kernel's golden validator on the resumed
/// machine's memory.
fn assert_resumable(
    kernel: &str,
    w: &Workload,
    cfg: &MachineConfig,
    chaos: Option<u64>,
    naive: bool,
) -> RunReport {
    let run = |m: &mut Machine| {
        if naive { m.run_naive() } else { m.run() }.unwrap_or_else(|e| panic!("{kernel}: {e}"))
    };
    let mut baseline_m = machine_for(w, cfg, chaos);
    let baseline = run(&mut baseline_m);

    let mut interrupted = machine_for(w, cfg, chaos);
    for _ in 0..baseline.cycles / 2 {
        if interrupted.step() {
            panic!("{kernel}: halted before the snapshot point");
        }
    }
    let snap = interrupted.snapshot();
    let mut resumed_m = Machine::from_snapshot(&snap);
    let resumed = run(&mut resumed_m);
    assert_eq!(
        resumed, baseline,
        "{kernel} {}x{} chaos={chaos:?} naive={naive}: resumed report diverged",
        cfg.cores, cfg.threads_per_core
    );
    (w.validate)(resumed_m.mem().backing())
        .unwrap_or_else(|e| panic!("{kernel}: resumed run failed validation: {e}"));

    // The interrupted machine keeps running too — stepping must not have
    // perturbed it.
    let finished = run(&mut interrupted);
    assert_eq!(finished, baseline, "{kernel}: interrupted run diverged");
    baseline
}

#[test]
fn snapshot_resume_matches_uninterrupted_all_kernels() {
    for kernel in KERNEL_NAMES {
        for (cores, tpc) in SHAPES {
            for variant in [Variant::Base, Variant::Glsc] {
                let cfg = MachineConfig::paper(cores, tpc, 4);
                let w = build_named(kernel, Dataset::Tiny, variant, &cfg).expect("known kernel");
                assert_resumable(kernel, &w, &cfg, None, false);
            }
        }
    }
}

#[test]
fn snapshot_resume_matches_under_chaos() {
    // An active FaultPlan makes resumption sensitive to RNG state: the
    // snapshot must carry it, or the resumed run replays a different
    // fault sequence and the timing diverges. Watchdog + generous budget
    // as in the chaos bench harness.
    for kernel in KERNEL_NAMES {
        for (cores, tpc) in [(2, 2), (4, 4)] {
            let cfg = MachineConfig::paper(cores, tpc, 4)
                .with_max_cycles(2_000_000_000)
                .with_watchdog_window(Some(5_000_000));
            let w = build_named(kernel, Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");
            assert_resumable(kernel, &w, &cfg, Some(0x5EED), false);
        }
    }
}

#[test]
fn snapshot_resume_matches_with_in_flight_noc_messages() {
    // On a contended ring fabric the snapshot point lands mid-burst: link
    // busy horizons hold in-flight reservations and (under chaos) the NoC
    // may carry pending link-delay jitter. All of that state must ride
    // the snapshot, in both the fast-forward and naive loops.
    for kernel in ["HIP", "TMS", "GBC"] {
        let cfg = MachineConfig::paper(4, 4, 4)
            .with_noc(NocConfig::ring())
            .with_max_cycles(2_000_000_000)
            .with_watchdog_window(Some(5_000_000));
        let w = build_named(kernel, Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");
        let fault_free = assert_resumable(kernel, &w, &cfg, None, false);
        assert!(
            fault_free.mem.noc.queue_cycles > 0,
            "{kernel}: ring run showed no fabric contention, snapshot point is trivial"
        );
        assert_resumable(kernel, &w, &cfg, Some(0x0C5EED), false);
        assert_resumable(kernel, &w, &cfg, Some(0x5EED), true);
    }
}

#[test]
fn snapshot_resume_matches_under_every_arbitration_policy() {
    // The arbiter (NACK holdoff windows / age streak book) lives in the
    // MemorySystem and must ride snapshots: resuming mid-window or
    // mid-streak with a blank arbiter would change who wins the next SC.
    // The contended micro keeps the arbiter busy at the halfway point, so
    // this drill is non-vacuous — asserted below.
    use glsc::kernels::micro::{Micro, MicroParams, Scenario};
    use glsc::sim::ArbitrationPolicy;
    let hot = Micro::with_params(
        Scenario::A,
        MicroParams {
            iters: 40,
            private_lines: 8,
            shared_lines: 4,
            seed: 72,
        },
    );
    for policy in [
        ArbitrationPolicy::NackHoldoff { window: 64 },
        ArbitrationPolicy::AgedPriority,
    ] {
        let cfg = MachineConfig::paper(4, 4, 4)
            .with_arbitration(policy)
            .with_max_cycles(2_000_000_000)
            .with_watchdog_window(Some(5_000_000));
        let w = hot.clone().build(Variant::Glsc, &cfg);

        let mut probe = machine_for(&w, &cfg, None);
        let baseline = probe.run().unwrap_or_else(|e| panic!("{policy:?}: {e}"));
        let mut halfway = machine_for(&w, &cfg, None);
        for _ in 0..baseline.cycles / 2 {
            assert!(!halfway.step(), "{policy:?}: halted before halfway");
        }
        assert!(
            !halfway.mem().arbiter().is_idle(),
            "{policy:?}: arbiter idle at the snapshot point, drill is vacuous"
        );

        assert_resumable(&w.name, &w, &cfg, None, false);
        assert_resumable(&w.name, &w, &cfg, Some(0x5EED), false);
        assert_resumable(&w.name, &w, &cfg, None, true);
    }
}

#[test]
fn snapshot_resume_matches_naive_loop() {
    // The naive single-stepped loop must resume identically as well —
    // snapshot support cannot depend on the fast-forward path.
    for kernel in ["HIP", "TMS", "GBC"] {
        let cfg = MachineConfig::paper(2, 2, 4);
        let w = build_named(kernel, Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");
        let naive = assert_resumable(kernel, &w, &cfg, None, true);
        let fast = assert_resumable(kernel, &w, &cfg, None, false);
        assert_eq!(naive, fast, "{kernel}: naive and fast reports differ");
    }
}

/// SPMD store-burst micro for the write-buffer drill: each thread
/// streams two bursts of 32 scalar stores into its private window at
/// `0x8000 + gid*0x400`, with a release fence between the bursts and a
/// full fence before halting, so a mid-run snapshot reliably lands
/// while per-thread write buffers are non-empty and a drain is pending.
fn store_burst_program() -> glsc::isa::Program {
    use glsc::isa::{ProgramBuilder, Reg};
    let r = Reg::new;
    let mut b = ProgramBuilder::new();
    b.shl(r(1), r(0), 10); // r1 = gid << 10 (r0 holds gid at reset)
    b.addi(r(1), r(1), 0x8000);
    b.li(r(2), 0);
    for bound in [32i64, 64] {
        let burst = b.here();
        b.add(r(3), r(2), r(0)); // value = i + gid
        b.shl(r(4), r(2), 2);
        b.add(r(4), r(4), r(1));
        b.st(r(3), r(4), 0);
        b.addi(r(2), r(2), 1);
        b.blt(r(2), bound, burst);
        if bound == 32 {
            b.fence_rel();
        } else {
            b.fence();
        }
    }
    b.halt();
    b.build().expect("valid store-burst program")
}

#[test]
fn snapshot_with_nonempty_write_buffers_resumes_bit_identical() {
    // Under the relaxed models the snapshot must carry each thread's
    // write buffer (pending stores, drain timing, fence state). Instead
    // of snapshotting blindly at half the cycle count, step until some
    // thread actually holds buffered stores — asserting the drill is
    // non-vacuous — and resume from there.
    use glsc::sim::MemoryOrder;
    let program = store_burst_program();
    for order in [MemoryOrder::Tso, MemoryOrder::RelaxedFence] {
        for chaos in [None, Some(0x5EED_u64)] {
            let cfg = MachineConfig::paper(2, 2, 4)
                .with_memory_order(order)
                .with_max_cycles(2_000_000_000)
                .with_watchdog_window(Some(5_000_000));
            let gids = cfg.total_threads();
            let fresh = || {
                let mut m = Machine::new(cfg.clone());
                if let Some(seed) = chaos {
                    m.mem_mut()
                        .install_fault_plan(FaultPlan::new(ChaosConfig::from_seed(seed)));
                }
                m.load_program(program.clone());
                m
            };
            let validate = |m: &Machine| {
                for gid in 0..gids as u64 {
                    for i in 0..64u64 {
                        let addr = 0x8000 + gid * 0x400 + i * 4;
                        assert_eq!(
                            m.mem().backing().read_u32(addr),
                            (gid + i) as u32,
                            "{order} chaos={chaos:?}: thread {gid} word {i} wrong"
                        );
                    }
                }
            };

            let mut baseline_m = fresh();
            let baseline = baseline_m
                .run()
                .unwrap_or_else(|e| panic!("{order} chaos={chaos:?}: {e}"));
            validate(&baseline_m);

            let mut interrupted = fresh();
            while (0..gids).all(|g| interrupted.buffered_stores(g) == 0) {
                assert!(
                    !interrupted.step(),
                    "{order} chaos={chaos:?}: halted before any store was buffered"
                );
            }
            let snap = interrupted.snapshot();
            let mut resumed_m = Machine::from_snapshot(&snap);
            let resumed = resumed_m
                .run()
                .unwrap_or_else(|e| panic!("{order} chaos={chaos:?}: resume: {e}"));
            assert_eq!(
                resumed, baseline,
                "{order} chaos={chaos:?}: mid-drain resume diverged"
            );
            validate(&resumed_m);

            let finished = interrupted
                .run()
                .unwrap_or_else(|e| panic!("{order} chaos={chaos:?}: continue: {e}"));
            assert_eq!(
                finished, baseline,
                "{order} chaos={chaos:?}: interrupted run diverged"
            );
        }
    }
}

#[test]
fn snapshot_resume_matches_under_relaxed_models_on_kernels() {
    // The existing kernel differential, under TSO and RelaxedFence: the
    // GLSC variants store through the GSU scatter path, so this pins the
    // model plumbing (fence handling, drain scheduling) rather than
    // write-buffer contents — the micro above covers those.
    use glsc::sim::MemoryOrder;
    for kernel in ["HIP", "TMS"] {
        for order in [MemoryOrder::Tso, MemoryOrder::RelaxedFence] {
            let cfg = MachineConfig::paper(2, 2, 4)
                .with_memory_order(order)
                .with_max_cycles(2_000_000_000)
                .with_watchdog_window(Some(5_000_000));
            let w = build_named(kernel, Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");
            assert_resumable(kernel, &w, &cfg, None, false);
            assert_resumable(kernel, &w, &cfg, Some(0x5EED), false);
        }
    }
}
