//! Snapshot/restore differential oracle on the real workloads: for every
//! kernel and every Fig. 6 machine shape, running to completion in one
//! shot must be bit-identical — same `RunReport`, same validated final
//! memory — to stepping halfway, snapshotting, hydrating a fresh machine
//! from the snapshot, and finishing there. Also covers the naive
//! (single-stepped) loop and resumption with an active fault plan, whose
//! RNG state rides in the snapshot.

use glsc::kernels::{build_named, Dataset, Variant, Workload, KERNEL_NAMES};
use glsc::sim::{ChaosConfig, FaultPlan, Machine, MachineConfig, NocConfig, RunReport};

const SHAPES: [(usize, usize); 4] = [(1, 1), (1, 4), (4, 1), (4, 4)];

fn machine_for(w: &Workload, cfg: &MachineConfig, chaos: Option<u64>) -> Machine {
    let mut m = Machine::new(cfg.clone());
    if let Some(seed) = chaos {
        m.mem_mut()
            .install_fault_plan(FaultPlan::new(ChaosConfig::from_seed(seed)));
    }
    w.image.apply(m.mem_mut().backing_mut());
    m.load_program(w.program.clone());
    m
}

/// One-shot baseline, then interrupt-at-half + resume; asserts report
/// equality and runs the kernel's golden validator on the resumed
/// machine's memory.
fn assert_resumable(
    kernel: &str,
    w: &Workload,
    cfg: &MachineConfig,
    chaos: Option<u64>,
    naive: bool,
) -> RunReport {
    let run = |m: &mut Machine| {
        if naive { m.run_naive() } else { m.run() }.unwrap_or_else(|e| panic!("{kernel}: {e}"))
    };
    let mut baseline_m = machine_for(w, cfg, chaos);
    let baseline = run(&mut baseline_m);

    let mut interrupted = machine_for(w, cfg, chaos);
    for _ in 0..baseline.cycles / 2 {
        if interrupted.step() {
            panic!("{kernel}: halted before the snapshot point");
        }
    }
    let snap = interrupted.snapshot();
    let mut resumed_m = Machine::from_snapshot(&snap);
    let resumed = run(&mut resumed_m);
    assert_eq!(
        resumed, baseline,
        "{kernel} {}x{} chaos={chaos:?} naive={naive}: resumed report diverged",
        cfg.cores, cfg.threads_per_core
    );
    (w.validate)(resumed_m.mem().backing())
        .unwrap_or_else(|e| panic!("{kernel}: resumed run failed validation: {e}"));

    // The interrupted machine keeps running too — stepping must not have
    // perturbed it.
    let finished = run(&mut interrupted);
    assert_eq!(finished, baseline, "{kernel}: interrupted run diverged");
    baseline
}

#[test]
fn snapshot_resume_matches_uninterrupted_all_kernels() {
    for kernel in KERNEL_NAMES {
        for (cores, tpc) in SHAPES {
            for variant in [Variant::Base, Variant::Glsc] {
                let cfg = MachineConfig::paper(cores, tpc, 4);
                let w = build_named(kernel, Dataset::Tiny, variant, &cfg).expect("known kernel");
                assert_resumable(kernel, &w, &cfg, None, false);
            }
        }
    }
}

#[test]
fn snapshot_resume_matches_under_chaos() {
    // An active FaultPlan makes resumption sensitive to RNG state: the
    // snapshot must carry it, or the resumed run replays a different
    // fault sequence and the timing diverges. Watchdog + generous budget
    // as in the chaos bench harness.
    for kernel in KERNEL_NAMES {
        for (cores, tpc) in [(2, 2), (4, 4)] {
            let cfg = MachineConfig::paper(cores, tpc, 4)
                .with_max_cycles(2_000_000_000)
                .with_watchdog_window(Some(5_000_000));
            let w = build_named(kernel, Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");
            assert_resumable(kernel, &w, &cfg, Some(0x5EED), false);
        }
    }
}

#[test]
fn snapshot_resume_matches_with_in_flight_noc_messages() {
    // On a contended ring fabric the snapshot point lands mid-burst: link
    // busy horizons hold in-flight reservations and (under chaos) the NoC
    // may carry pending link-delay jitter. All of that state must ride
    // the snapshot, in both the fast-forward and naive loops.
    for kernel in ["HIP", "TMS", "GBC"] {
        let cfg = MachineConfig::paper(4, 4, 4)
            .with_noc(NocConfig::ring())
            .with_max_cycles(2_000_000_000)
            .with_watchdog_window(Some(5_000_000));
        let w = build_named(kernel, Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");
        let fault_free = assert_resumable(kernel, &w, &cfg, None, false);
        assert!(
            fault_free.mem.noc.queue_cycles > 0,
            "{kernel}: ring run showed no fabric contention, snapshot point is trivial"
        );
        assert_resumable(kernel, &w, &cfg, Some(0x0C5EED), false);
        assert_resumable(kernel, &w, &cfg, Some(0x5EED), true);
    }
}

#[test]
fn snapshot_resume_matches_under_every_arbitration_policy() {
    // The arbiter (NACK holdoff windows / age streak book) lives in the
    // MemorySystem and must ride snapshots: resuming mid-window or
    // mid-streak with a blank arbiter would change who wins the next SC.
    // The contended micro keeps the arbiter busy at the halfway point, so
    // this drill is non-vacuous — asserted below.
    use glsc::kernels::micro::{Micro, MicroParams, Scenario};
    use glsc::sim::ArbitrationPolicy;
    let hot = Micro::with_params(
        Scenario::A,
        MicroParams {
            iters: 40,
            private_lines: 8,
            shared_lines: 4,
            seed: 72,
        },
    );
    for policy in [
        ArbitrationPolicy::NackHoldoff { window: 64 },
        ArbitrationPolicy::AgedPriority,
    ] {
        let cfg = MachineConfig::paper(4, 4, 4)
            .with_arbitration(policy)
            .with_max_cycles(2_000_000_000)
            .with_watchdog_window(Some(5_000_000));
        let w = hot.clone().build(Variant::Glsc, &cfg);

        let mut probe = machine_for(&w, &cfg, None);
        let baseline = probe.run().unwrap_or_else(|e| panic!("{policy:?}: {e}"));
        let mut halfway = machine_for(&w, &cfg, None);
        for _ in 0..baseline.cycles / 2 {
            assert!(!halfway.step(), "{policy:?}: halted before halfway");
        }
        assert!(
            !halfway.mem().arbiter().is_idle(),
            "{policy:?}: arbiter idle at the snapshot point, drill is vacuous"
        );

        assert_resumable(&w.name, &w, &cfg, None, false);
        assert_resumable(&w.name, &w, &cfg, Some(0x5EED), false);
        assert_resumable(&w.name, &w, &cfg, None, true);
    }
}

#[test]
fn snapshot_resume_matches_naive_loop() {
    // The naive single-stepped loop must resume identically as well —
    // snapshot support cannot depend on the fast-forward path.
    for kernel in ["HIP", "TMS", "GBC"] {
        let cfg = MachineConfig::paper(2, 2, 4);
        let w = build_named(kernel, Dataset::Tiny, Variant::Glsc, &cfg).expect("known kernel");
        let naive = assert_resumable(kernel, &w, &cfg, None, true);
        let fast = assert_resumable(kernel, &w, &cfg, None, false);
        assert_eq!(naive, fast, "{kernel}: naive and fast reports differ");
    }
}
